//! GPU architecture descriptions (the Table II hardware, as model presets).

/// Static resources and throughput figures of one GPU model.
///
/// The presets mirror the two platforms of the paper's evaluation
/// (NVIDIA Tesla A100 for §V-B/C, Tesla V100 for §V-D) using the public
/// architecture whitepaper figures. The performance model in
/// [`crate::GpuSim`] turns these plus a stencil/setting pair into a
/// predicted kernel time and Nsight-style metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Marketing name, e.g. `"A100"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_tb_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Hard per-thread register limit before spilling to local memory.
    pub max_regs_per_thread: u32,
    /// Shared memory per SM in bytes.
    pub shmem_per_sm: u32,
    /// Maximum shared memory per thread block in bytes.
    pub shmem_per_tb: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Peak FP64 throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Constant-memory cache per SM in bytes.
    pub const_cache: u32,
    /// Kernel launch latency in microseconds.
    pub launch_us: f64,
    /// Cost of one block-wide `__syncthreads()` in microseconds,
    /// per resident thread block wave.
    pub sync_us: f64,
    /// Warp width.
    pub warp_size: u32,
    /// Baseline time to compile one generated kernel variant in seconds
    /// (nvcc dominates the per-setting evaluation cost; see §V-A's
    /// iso-time methodology).
    pub compile_base_s: f64,
}

impl GpuArch {
    /// NVIDIA Tesla A100 (Ampere GA100), the paper's primary platform.
    pub fn a100() -> Self {
        GpuArch {
            name: "A100",
            sm_count: 108,
            max_threads_per_sm: 2048,
            max_tb_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            shmem_per_sm: 164 * 1024,
            shmem_per_tb: 160 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            dram_gbps: 1555.0,
            fp64_gflops: 9700.0,
            const_cache: 64 * 1024,
            launch_us: 4.0,
            sync_us: 0.12,
            warp_size: 32,
            compile_base_s: 0.5,
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100), the paper's portability platform.
    pub fn v100() -> Self {
        GpuArch {
            name: "V100",
            sm_count: 80,
            max_threads_per_sm: 2048,
            max_tb_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            shmem_per_sm: 96 * 1024,
            shmem_per_tb: 96 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            dram_gbps: 900.0,
            fp64_gflops: 7800.0,
            const_cache: 64 * 1024,
            launch_us: 4.5,
            sync_us: 0.15,
            warp_size: 32,
            compile_base_s: 0.45,
        }
    }

    /// A deliberately small fictional part, useful for tests that need
    /// resource limits to bind at modest settings.
    pub fn small() -> Self {
        GpuArch {
            name: "small",
            sm_count: 16,
            max_threads_per_sm: 1024,
            max_tb_per_sm: 16,
            max_warps_per_sm: 32,
            regs_per_sm: 32_768,
            max_regs_per_thread: 128,
            shmem_per_sm: 48 * 1024,
            shmem_per_tb: 48 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            dram_gbps: 300.0,
            fp64_gflops: 1000.0,
            const_cache: 64 * 1024,
            launch_us: 5.0,
            sync_us: 0.2,
            warp_size: 32,
            compile_base_s: 0.30,
        }
    }

    /// Look up a preset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<GpuArch> {
        match name.to_ascii_lowercase().as_str() {
            "a100" => Some(Self::a100()),
            "v100" => Some(Self::v100()),
            "small" => Some(Self::small()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_scale() {
        let a = GpuArch::a100();
        let v = GpuArch::v100();
        assert!(a.dram_gbps > v.dram_gbps);
        assert!(a.fp64_gflops > v.fp64_gflops);
        assert!(a.l2_bytes > v.l2_bytes);
        assert_eq!(a.warp_size, 32);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(GpuArch::by_name("A100").unwrap().name, "A100");
        assert_eq!(GpuArch::by_name("v100").unwrap().name, "V100");
        assert!(GpuArch::by_name("h100").is_none());
    }
}
