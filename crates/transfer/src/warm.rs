//! Surrogate-guided warm-start seeding.
//!
//! Given a [`KnowledgeBase`] and a target (stencil, arch), [`warm_seeds`]
//! ranks every setting the archive has ever measured for that stencil
//! and returns the top K as seeds for `Tuner::warm_start`. Ranking uses
//! the shared [`cst_ml::Surrogate`] (the same q30 quantile-label forest
//! the online ForestTuner trains) fit on KB records:
//!
//! - **exact**: the (stencil, arch) pair has enough records — train on
//!   setting features alone.
//! - **cross-arch**: the exact pair is data-poor but the stencil was
//!   measured on other known architectures — train on setting features
//!   extended with [`arch_features`], score candidates with the target
//!   architecture's features appended, and let the forest transfer what
//!   it learned across hardware.
//! - **observed**: too few records to fit any forest — fall back to the
//!   minimum observed time per setting.
//! - **empty**: the archive knows nothing about this stencil; no seeds.
//!
//! Everything here is deterministic for a fixed (KB, target, seed):
//! candidates are sorted by canonical setting string before ranking, and
//! all tie-breaks are lexicographic.

use crate::kb::{KbRecord, KnowledgeBase};
use cst_gpu_sim::GpuArch;
use cst_ml::Surrogate;
use cst_space::Setting;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of seeds offered to a tuner. One half of the kernel's
/// default population: warm seeds steer the start without erasing the
/// explorative half.
pub const DEFAULT_TOP_K: usize = 16;

/// Minimum training rows before a forest is worth fitting; below this
/// the observed-time fallback ranks directly.
pub const MIN_FIT: usize = 8;

/// Stream-domain separator for surrogate training draws, XORed with the
/// run seed (forest `^0x0f0e_e57a`, anneal `^0x0a11_ea1e`, ...).
const TRANSFER_STREAM: u64 = 0x7a05_fe2a;

/// Numeric description of an architecture for cross-arch features, in a
/// fixed field order. Capacity-like fields enter as `log2` so the forest
/// sees hardware generations on the same scale as the `Pow2` setting
/// features.
pub fn arch_features(a: &GpuArch) -> Vec<f64> {
    vec![
        (a.sm_count as f64).log2(),
        (a.max_threads_per_sm as f64).log2(),
        (a.max_tb_per_sm as f64).log2(),
        (a.max_warps_per_sm as f64).log2(),
        (a.regs_per_sm as f64).log2(),
        (a.shmem_per_sm as f64).log2(),
        (a.shmem_per_tb as f64).log2(),
        (a.l2_bytes as f64).log2(),
        a.dram_gbps.log2(),
        a.fp64_gflops.log2(),
        a.launch_us,
        a.sync_us,
    ]
}

/// A surrogate specialized to one target (stencil, arch), trained from
/// KB records.
#[derive(Debug, Clone)]
pub struct TransferSurrogate {
    inner: Surrogate,
    /// Target arch features appended to every scored candidate;
    /// empty in exact mode.
    target: Vec<f64>,
    n_train: usize,
}

impl TransferSurrogate {
    /// Train for the target pair. Exact mode when the pair itself has
    /// [`MIN_FIT`] records; otherwise the cross-arch fallback pools the
    /// stencil's records from every [`GpuArch::by_name`]-known
    /// architecture. `None` when neither mode has enough data (or the
    /// target arch is unknown and cross-arch would be required).
    pub fn fit(kb: &KnowledgeBase, stencil: &str, arch: &str, seed: u64) -> Option<Self> {
        let mut rng = StdRng::seed_from_u64(seed ^ TRANSFER_STREAM);
        let exact: Vec<&KbRecord> = kb.for_pair(stencil, arch);
        let rows = |records: &[&KbRecord], with_arch: bool| {
            let mut xs = Vec::new();
            let mut times = Vec::new();
            for r in records {
                let Some(s) = r.parsed_setting() else { continue };
                let mut x = s.features().to_vec();
                if with_arch {
                    let a = GpuArch::by_name(&r.arch)?;
                    x.extend(arch_features(&a));
                }
                xs.push(x);
                times.push(r.time_ms);
            }
            Some((xs, times))
        };
        if exact.len() >= MIN_FIT {
            let (xs, times) = rows(&exact, false)?;
            if xs.len() >= MIN_FIT {
                let n = xs.len();
                let inner = Surrogate::fit(&xs, &times, &mut rng)?;
                return Some(TransferSurrogate { inner, target: Vec::new(), n_train: n });
            }
        }
        let target_arch = GpuArch::by_name(arch)?;
        let pool: Vec<&KbRecord> = kb
            .for_stencil(stencil)
            .into_iter()
            .filter(|r| GpuArch::by_name(&r.arch).is_some())
            .collect();
        let (xs, times) = rows(&pool, true)?;
        if xs.len() < MIN_FIT {
            return None;
        }
        let n = xs.len();
        let inner = Surrogate::fit(&xs, &times, &mut rng)?;
        Some(TransferSurrogate { inner, target: arch_features(&target_arch), n_train: n })
    }

    /// `"exact"` or `"cross-arch"`.
    pub fn mode(&self) -> &'static str {
        if self.target.is_empty() {
            "exact"
        } else {
            "cross-arch"
        }
    }

    /// Training rows behind the fit.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Probability-like fast score for a candidate on the target arch.
    pub fn score(&self, s: &Setting) -> f64 {
        let mut x = s.features().to_vec();
        x.extend_from_slice(&self.target);
        self.inner.score(&x)
    }

    /// The underlying shared surrogate — hand this to
    /// `ForestTuner::pretrained` so the online path starts from the
    /// transferred model instead of random below `min_train`.
    pub fn surrogate(&self) -> &Surrogate {
        &self.inner
    }
}

/// The warm-start decision: ranked seeds plus the stats the serve
/// metrics registry and `cstuner kb rank` report.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Top-K settings, best first, ready for `Tuner::warm_start`.
    pub seeds: Vec<Setting>,
    /// `"exact"`, `"cross-arch"`, `"observed"` or `"empty"`.
    pub mode: &'static str,
    /// Training rows behind the surrogate (0 for observed/empty).
    pub n_train: usize,
    /// Distinct recorded settings considered before the top-K cut.
    pub candidates: usize,
}

/// Rank the archive's distinct settings for `stencil` and return the
/// top `k` as seeds for tuning on `arch`.
pub fn warm_seeds(kb: &KnowledgeBase, stencil: &str, arch: &str, k: usize, seed: u64) -> WarmStart {
    // Distinct candidates: every setting ever measured for the stencil,
    // keyed by canonical string, carrying the minimum observed time.
    let mut cands: Vec<(String, Setting, f64)> = Vec::new();
    for r in kb.for_stencil(stencil) {
        let Some(s) = r.parsed_setting() else { continue };
        let key = s.to_string();
        match cands.iter_mut().find(|(k0, _, _)| *k0 == key) {
            Some((_, _, t)) => *t = t.min(r.time_ms),
            None => cands.push((key, s, r.time_ms)),
        }
    }
    cands.sort_by(|a, b| a.0.cmp(&b.0));
    if cands.is_empty() {
        return WarmStart { seeds: Vec::new(), mode: "empty", n_train: 0, candidates: 0 };
    }
    let candidates = cands.len();
    match TransferSurrogate::fit(kb, stencil, arch, seed) {
        Some(sur) => {
            // Descending score; the pre-sort makes string order the tie-break.
            let mut scored: Vec<(f64, Setting)> =
                cands.into_iter().map(|(_, s, _)| (sur.score(&s), s)).collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            WarmStart {
                seeds: scored.into_iter().take(k).map(|(_, s)| s).collect(),
                mode: sur.mode(),
                n_train: sur.n_train(),
                candidates,
            }
        }
        None => {
            // Too little data for any forest: fastest observed first.
            cands.sort_by(|a, b| a.2.to_bits().cmp(&b.2.to_bits()).then_with(|| a.0.cmp(&b.0)));
            WarmStart {
                seeds: cands.into_iter().take(k).map(|(_, s, _)| s).collect(),
                mode: "observed",
                n_train: 0,
                candidates,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_space::ParamId;

    fn record(stencil: &str, arch: &str, s: &Setting, t: f64) -> KbRecord {
        KbRecord {
            stencil: stencil.into(),
            arch: arch.into(),
            setting: s.to_string(),
            time_ms: t,
            source: "r".into(),
            origin: "0".into(),
        }
    }

    /// Settings varying TB_x over the pow2 lattice; time grows with TB_x
    /// so "small TB_x" is the learnable fast signal.
    fn kb_with(n: usize, arch: &str) -> KnowledgeBase {
        let mut records = Vec::new();
        for i in 0..n {
            let mut s = Setting::baseline();
            s.set(ParamId::TBx, 1 << (i % 6));
            s.canonicalize();
            records.push(record("j3d7pt", arch, &s, 1.0 + (i % 6) as f64));
        }
        KnowledgeBase { records }
    }

    #[test]
    fn empty_kb_yields_empty_mode() {
        let w = warm_seeds(&KnowledgeBase::default(), "j3d7pt", "a100", 8, 1);
        assert_eq!(w.mode, "empty");
        assert!(w.seeds.is_empty());
        assert_eq!(w.candidates, 0);
    }

    #[test]
    fn sparse_kb_falls_back_to_observed_times() {
        let mut s_fast = Setting::baseline();
        s_fast.set(ParamId::TBx, 64);
        s_fast.canonicalize();
        let s_slow = Setting::baseline();
        let kb = KnowledgeBase {
            records: vec![
                record("j3d7pt", "a100", &s_slow, 9.0),
                record("j3d7pt", "a100", &s_fast, 2.0),
            ],
        };
        let w = warm_seeds(&kb, "j3d7pt", "a100", 8, 1);
        assert_eq!(w.mode, "observed");
        assert_eq!(w.candidates, 2);
        assert_eq!(w.seeds[0], s_fast);
        assert_eq!(w.seeds[1], s_slow);
    }

    #[test]
    fn dense_pair_trains_exact_and_front_loads_fast_settings() {
        let kb = kb_with(24, "a100");
        let w = warm_seeds(&kb, "j3d7pt", "a100", 3, 7);
        assert_eq!(w.mode, "exact");
        assert_eq!(w.n_train, 24);
        assert_eq!(w.seeds.len(), 3);
        // The fast end of the lattice (small TB_x) should dominate the top.
        assert!(w.seeds[0].get(ParamId::TBx) <= 8, "{:?}", w.seeds[0]);
    }

    #[test]
    fn unseen_arch_transfers_cross_arch() {
        let kb = kb_with(24, "v100");
        let w = warm_seeds(&kb, "j3d7pt", "a100", 4, 7);
        assert_eq!(w.mode, "cross-arch");
        assert_eq!(w.n_train, 24);
        assert_eq!(w.seeds.len(), 4);
        let sur = TransferSurrogate::fit(&kb, "j3d7pt", "a100", 7).unwrap();
        assert_eq!(sur.mode(), "cross-arch");
        assert!(sur.surrogate().n_train() > 0);
    }

    #[test]
    fn foreign_arch_names_cannot_transfer() {
        // Records exist but on an arch GpuArch::by_name does not know,
        // and the pair itself is data-poor: observed fallback.
        let kb = kb_with(24, "tpu-x");
        let w = warm_seeds(&kb, "j3d7pt", "a100", 4, 7);
        assert_eq!(w.mode, "observed");
        assert!(!w.seeds.is_empty());
    }

    #[test]
    fn ranking_is_deterministic_for_fixed_inputs() {
        let kb = kb_with(24, "a100");
        let a = warm_seeds(&kb, "j3d7pt", "a100", 8, 42);
        let b = warm_seeds(&kb, "j3d7pt", "a100", 8, 42);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.mode, b.mode);
    }

    #[test]
    fn arch_features_are_fixed_width_and_ordered() {
        let a = arch_features(&GpuArch::a100());
        let v = arch_features(&GpuArch::v100());
        assert_eq!(a.len(), v.len());
        assert!(a.iter().all(|x| x.is_finite()));
        assert_ne!(a, v);
    }
}
