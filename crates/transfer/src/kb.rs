//! The knowledge base: versioned, byte-deterministic training records
//! extracted from an archive of run summaries.
//!
//! `kb build` walks a [`JournalStore`], reads each `*.summary.json`,
//! and turns its sampled (setting, time) pairs into [`KbRecord`]s tagged
//! with the run's stencil/arch identity and a content hash of the source
//! summary bytes (provenance: a KB record can always be traced back to
//! the exact archived bytes it came from). Records are sorted and
//! deduplicated under a total order, and the serializer uses the
//! journal's canonical float/string formatting, so the same store always
//! produces byte-identical `kb.json` — two builders on two machines can
//! diff their indexes with `cmp`.
//!
//! A corrupt or foreign summary (unparseable JSON, unknown version,
//! malformed setting strings) is skipped with a warning, never a build
//! failure: the KB is an accelerator, and one bad archive entry must not
//! take the whole fleet's memory down.

use cst_obs::JournalStore;
use cst_space::Setting;
use cst_telemetry::json::{self, Value};
use std::fmt::Write as _;
use std::path::Path;

/// Version stamped into every `kb.json`. Bump when a field is removed,
/// renamed, or changes meaning; adding optional fields is backward
/// compatible and needs no bump.
pub const KB_VERSION: u64 = 1;

/// Index file name inside a store directory.
pub const KB_FILE: &str = "kb.json";

/// One training record: a measured (setting, time) pair with identity
/// and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct KbRecord {
    /// Stencil name the measurement belongs to.
    pub stencil: String,
    /// GPU architecture name the measurement was taken on.
    pub arch: String,
    /// The measured setting, canonical `Display` form (re-rendered after
    /// parsing, so spacing/ordering is normalized).
    pub setting: String,
    /// Measured kernel time, ms (finite by construction).
    pub time_ms: f64,
    /// Run name in the source store.
    pub source: String,
    /// FNV-1a content hash of the source summary bytes, 16 hex digits.
    pub origin: String,
}

impl KbRecord {
    /// The record's parsed setting. Always succeeds for records built by
    /// [`KnowledgeBase::build`] (unparseable settings are skipped there);
    /// `None` only for hand-edited indexes.
    pub fn parsed_setting(&self) -> Option<Setting> {
        self.setting.parse().ok()
    }
}

/// The versioned record index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KnowledgeBase {
    /// Training records, sorted under the canonical total order.
    pub records: Vec<KbRecord>,
}

/// A finished build: the index plus the warnings it accumulated.
#[derive(Debug, Clone)]
pub struct KbBuild {
    /// The built index.
    pub kb: KnowledgeBase,
    /// One human-readable line per skipped summary/sample.
    pub warnings: Vec<String>,
}

/// FNV-1a over raw bytes (the same constants as
/// `Setting::stable_hash`), rendered as 16 hex digits.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl KnowledgeBase {
    /// Extract training records from every summary in the store.
    /// Summaries that fail to load (corrupt bytes, foreign versions) and
    /// samples whose setting does not parse are skipped with a warning;
    /// non-finite sample times (faulted measurements serialized as
    /// `null`) are silently dropped — they carry no label.
    pub fn build(store: &JournalStore) -> Result<KbBuild, String> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        for name in store.list()? {
            let path = store.path_of(&name);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    warnings.push(format!("skipping {}: {e}", path.display()));
                    continue;
                }
            };
            let summary = match store.load(&name) {
                Ok(s) => s,
                Err(e) => {
                    warnings.push(format!("skipping {e}"));
                    continue;
                }
            };
            let origin = content_hash(&bytes);
            for (text, t) in &summary.samples {
                if !t.is_finite() {
                    continue;
                }
                let parsed: Result<Setting, String> = text.parse();
                match parsed {
                    Ok(s) => records.push(KbRecord {
                        stencil: summary.stencil.clone(),
                        arch: summary.arch.clone(),
                        setting: s.to_string(),
                        time_ms: *t,
                        source: name.clone(),
                        origin: origin.clone(),
                    }),
                    Err(e) => {
                        warnings.push(format!("skipping sample in {name}: {e}"));
                    }
                }
            }
        }
        let mut kb = KnowledgeBase { records };
        kb.normalize();
        Ok(KbBuild { kb, warnings })
    }

    /// Sort under the canonical total order and drop exact duplicates —
    /// the invariant behind byte-deterministic serialization.
    fn normalize(&mut self) {
        self.records.sort_by(|a, b| {
            (&a.stencil, &a.arch, &a.setting, a.time_ms.to_bits(), &a.source, &a.origin).cmp(&(
                &b.stencil,
                &b.arch,
                &b.setting,
                b.time_ms.to_bits(),
                &b.source,
                &b.origin,
            ))
        });
        self.records.dedup();
    }

    /// Records for an exact (stencil, arch) pair.
    pub fn for_pair(&self, stencil: &str, arch: &str) -> Vec<&KbRecord> {
        self.records.iter().filter(|r| r.stencil == stencil && r.arch == arch).collect()
    }

    /// Records for a stencil on any architecture.
    pub fn for_stencil(&self, stencil: &str) -> Vec<&KbRecord> {
        self.records.iter().filter(|r| r.stencil == stencil).collect()
    }

    /// Distinct (stencil, arch) pairs with record counts, sorted.
    pub fn pairs(&self) -> Vec<(String, String, usize)> {
        let mut out: Vec<(String, String, usize)> = Vec::new();
        for r in &self.records {
            match out.iter_mut().find(|(s, a, _)| *s == r.stencil && *a == r.arch) {
                Some((_, _, n)) => *n += 1,
                None => out.push((r.stencil.clone(), r.arch.clone(), 1)),
            }
        }
        out
    }

    /// Serialize to the canonical single-line JSON form — fixed field
    /// order, journal float formatting, records pre-sorted — so equal
    /// indexes are equal byte strings.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(256 + self.records.len() * 160);
        let _ = write!(o, "{{\"kb_version\":{KB_VERSION},\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"stencil\":");
            json::write_escaped(&mut o, &r.stencil);
            o.push_str(",\"arch\":");
            json::write_escaped(&mut o, &r.arch);
            o.push_str(",\"setting\":");
            json::write_escaped(&mut o, &r.setting);
            o.push_str(",\"time_ms\":");
            json::write_f64(&mut o, r.time_ms);
            o.push_str(",\"source\":");
            json::write_escaped(&mut o, &r.source);
            o.push_str(",\"origin\":");
            json::write_escaped(&mut o, &r.origin);
            o.push('}');
        }
        o.push_str("]}");
        o
    }

    /// Parse a `kb.json` document, rejecting unknown versions.
    pub fn from_json(text: &str) -> Result<KnowledgeBase, String> {
        let v = json::parse(text.trim())?;
        let version = v.get("kb_version").and_then(Value::as_u64).ok_or("missing kb_version")?;
        if version != KB_VERSION {
            return Err(format!("kb version {version}, this build understands {KB_VERSION}"));
        }
        let s = |r: &Value, key: &str| -> String {
            r.get(key).and_then(Value::as_str).unwrap_or("?").to_string()
        };
        let mut records = Vec::new();
        for r in v.get("records").and_then(Value::as_arr).unwrap_or(&[]) {
            records.push(KbRecord {
                stencil: s(r, "stencil"),
                arch: s(r, "arch"),
                setting: s(r, "setting"),
                time_ms: r.get("time_ms").and_then(Value::as_f64).unwrap_or(f64::INFINITY),
                source: s(r, "source"),
                origin: s(r, "origin"),
            });
        }
        Ok(KnowledgeBase { records })
    }

    /// Where a store's index lives.
    pub fn path_in(store_dir: &Path) -> std::path::PathBuf {
        store_dir.join(KB_FILE)
    }

    /// Write the index into a store directory (trailing newline, like
    /// the archive's summary files).
    pub fn save(&self, store_dir: &Path) -> Result<(), String> {
        let path = Self::path_in(store_dir);
        std::fs::write(&path, self.to_json() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Load a store's index. `Ok(None)` when the store has no `kb.json`
    /// (the cold-path case — absent and empty indexes behave alike).
    pub fn load(store_dir: &Path) -> Result<Option<KnowledgeBase>, String> {
        let path = Self::path_in(store_dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        Self::from_json(&text).map(Some).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_telemetry::{event, strip_wall_fields, Field, FieldValue, Telemetry};
    use std::path::PathBuf;

    fn journal(stencil: &str, arch: &str, samples: &[(&str, f64)]) -> Vec<String> {
        let tel = Telemetry::in_memory();
        tel.meta(&[
            Field::new("stencil", FieldValue::Str(stencil)),
            Field::new("arch", FieldValue::Str(arch)),
            Field::new("tuner", FieldValue::Str("Random")),
            Field::new("seed", FieldValue::U64(1)),
        ]);
        event!(tel, "iteration", iteration = 1u32, v_s = 1.0, best_ms = 2.0, evals = 8u32);
        for (s, t) in samples {
            event!(tel, "sample", setting = *s, time_ms = *t);
        }
        event!(tel, "outcome", tuner = "Random", best_ms = 2.0, evaluations = 8u32, search_s = 1.0);
        tel.finish(1.0);
        tel.lines().unwrap().iter().map(|l| strip_wall_fields(l)).collect()
    }

    fn tmp_store(tag: &str) -> (PathBuf, JournalStore) {
        let d = std::env::temp_dir().join(format!("cst_kb_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        let store = JournalStore::open(&d).unwrap();
        (d, store)
    }

    fn baseline_str() -> String {
        Setting::baseline().to_string()
    }

    #[test]
    fn build_extracts_sorted_deduped_records_with_provenance() {
        let (dir, store) = tmp_store("build");
        let s1 = baseline_str();
        store.ingest_lines("run-b", &journal("j3d7pt", "a100", &[(&s1, 2.5)])).unwrap();
        store.ingest_lines("run-a", &journal("cheby", "v100", &[(&s1, 4.0), (&s1, 4.0)])).unwrap();
        let build = KnowledgeBase::build(&store).unwrap();
        assert!(build.warnings.is_empty(), "{:?}", build.warnings);
        // Duplicate (setting, time) within one run collapses; order is
        // stencil-major.
        assert_eq!(build.kb.records.len(), 2);
        assert_eq!(build.kb.records[0].stencil, "cheby");
        assert_eq!(build.kb.records[1].stencil, "j3d7pt");
        let r = &build.kb.records[1];
        assert_eq!(r.arch, "a100");
        assert_eq!(r.source, "run-b");
        assert_eq!(r.time_ms, 2.5);
        // Provenance matches the archived bytes.
        let bytes = std::fs::read(store.path_of("run-b")).unwrap();
        assert_eq!(r.origin, content_hash(&bytes));
        assert!(r.parsed_setting().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_foreign_summaries_are_skipped_with_warnings() {
        let (dir, store) = tmp_store("skip");
        store.ingest_lines("good", &journal("j3d7pt", "a100", &[(&baseline_str(), 2.0)])).unwrap();
        std::fs::write(store.path_of("corrupt"), "not json at all").unwrap();
        std::fs::write(store.path_of("foreign"), r#"{"summary_version":99}"#).unwrap();
        let build = KnowledgeBase::build(&store).unwrap();
        assert_eq!(build.kb.records.len(), 1);
        assert_eq!(build.warnings.len(), 2);
        assert!(build.warnings.iter().all(|w| w.starts_with("skipping")), "{:?}", build.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_sample_settings_are_skipped_per_record() {
        let (dir, store) = tmp_store("badset");
        let lines =
            journal("j3d7pt", "a100", &[("TB_x=not-a-number", 1.0), (&baseline_str(), 2.0)]);
        store.ingest_lines("mixed", &lines).unwrap();
        let build = KnowledgeBase::build(&store).unwrap();
        assert_eq!(build.kb.records.len(), 1);
        assert_eq!(build.warnings.len(), 1);
        assert!(build.warnings[0].contains("mixed"), "{}", build.warnings[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_times_carry_no_label() {
        let (dir, store) = tmp_store("inf");
        let lines = journal("j3d7pt", "a100", &[(&baseline_str(), f64::INFINITY)]);
        store.ingest_lines("faulted", &lines).unwrap();
        let build = KnowledgeBase::build(&store).unwrap();
        assert!(build.kb.records.is_empty());
        assert!(build.warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_round_trips_byte_exactly_and_rejects_foreign_versions() {
        let (dir, store) = tmp_store("json");
        store.ingest_lines("run", &journal("j3d7pt", "a100", &[(&baseline_str(), 2.5)])).unwrap();
        let kb = KnowledgeBase::build(&store).unwrap().kb;
        let j = kb.to_json();
        let back = KnowledgeBase::from_json(&j).unwrap();
        assert_eq!(back, kb);
        assert_eq!(back.to_json(), j);
        let foreign = j.replace("\"kb_version\":1", "\"kb_version\":7");
        assert!(KnowledgeBase::from_json(&foreign).unwrap_err().contains("version 7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_round_trip_and_absent_index_is_none() {
        let (dir, store) = tmp_store("io");
        assert_eq!(KnowledgeBase::load(store.dir()).unwrap(), None);
        store.ingest_lines("run", &journal("cheby", "v100", &[(&baseline_str(), 3.0)])).unwrap();
        let kb = KnowledgeBase::build(&store).unwrap().kb;
        kb.save(store.dir()).unwrap();
        assert_eq!(KnowledgeBase::load(store.dir()).unwrap(), Some(kb.clone()));
        assert_eq!(kb.pairs(), vec![("cheby".to_string(), "v100".to_string(), 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
