//! Transfer tuning: a persistent knowledge base over archived runs plus
//! a surrogate-guided warm-start layer.
//!
//! Every tuner in the zoo historically started cold on each (stencil,
//! arch) even though `cst-obs` archives every past run. This crate
//! closes the loop: [`KnowledgeBase`] extracts per-run training records
//! — setting feature vectors, observed `time_ms` labels, stencil/arch
//! identity — from a [`cst_obs::JournalStore`]'s summaries into a
//! versioned, byte-deterministic `kb.json` index, and [`WarmStart`]
//! trains the shared [`cst_ml::Surrogate`] on those records to pre-rank
//! previously seen settings before any simulated measurement. The
//! surrogate's top picks are offered to tuners via
//! `Tuner::warm_start` / `KernelConfig::warm`.
//!
//! Determinism contract (pinned by the testkit differential oracle):
//! warm-start changes **only starting points**, never the evaluator —
//! the zero-KB path is bit-identical to a build without this crate, and
//! the same store + seed always produce byte-identical `kb.json` bytes
//! and warm-seed lists.

pub mod kb;
pub mod warm;

pub use kb::{KbBuild, KbRecord, KnowledgeBase, KB_FILE, KB_VERSION};
pub use warm::{warm_seeds, TransferSurrogate, WarmStart, DEFAULT_TOP_K};
