//! Static stencil descriptions consumed by the performance model, the
//! parameter space, and the code generator.

/// Geometric shape of the neighbor access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilShape {
    /// Accesses only along the axes (e.g. the 7-point Jacobi).
    Star,
    /// Accesses the full `(2k+1)^3` cube (e.g. the 27-point Jacobi).
    Box,
    /// Mixed axis-dominated pattern with some planar accesses, typical of
    /// the high-order seismic kernels (hypterm, addsgd*, rhs4center).
    Hybrid,
}

/// Broad computational class, used by the Artemis-style baseline to decide
/// which optimizations are "high impact" for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilClass {
    /// Low-FLOP, bandwidth-bound smoothers (j3d7pt, j3d27pt, helmholtz, cheby).
    MemoryBound,
    /// Hundreds of FLOPs per point, register-pressure dominated
    /// (hypterm, addsgd4, addsgd6, rhs4center).
    ComputeBound,
}

/// Static description of a 3-D stencil kernel: everything the auto-tuner
/// needs to know about the workload without executing it.
///
/// Mirrors Table III of the paper plus the per-point access counts the
/// GPU performance model requires.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilSpec {
    /// Kernel name as used throughout the paper (e.g. `"j3d7pt"`).
    pub name: &'static str,
    /// Input grid extents `[M1, M2, M3]` (x, y, z).
    pub grid: [usize; 3],
    /// Stencil order: neighbor extent along each dimension.
    pub order: u32,
    /// Double-precision floating point operations per output point.
    pub flops: u32,
    /// Total number of input + output arrays touched per sweep.
    pub io_arrays: u32,
    /// Number of arrays read per sweep.
    pub read_arrays: u32,
    /// Number of arrays written per sweep.
    pub write_arrays: u32,
    /// Distinct grid points read per output point (across all read arrays).
    pub reads_per_point: u32,
    /// Scalar coefficients referenced by the kernel (candidates for
    /// constant memory).
    pub coefficients: u32,
    /// Neighbor geometry.
    pub shape: StencilShape,
    /// Bandwidth- vs. compute-bound classification.
    pub class: StencilClass,
}

impl StencilSpec {
    /// Total number of output points of one sweep (interior updates write
    /// the full grid minus the halo of width `order`).
    pub fn interior_points(&self) -> usize {
        let h = self.order as usize;
        self.grid.iter().map(|&m| m.saturating_sub(2 * h)).product()
    }

    /// Total points of the full grid.
    pub fn total_points(&self) -> usize {
        self.grid.iter().product()
    }

    /// Total double-precision FLOPs of one sweep.
    pub fn sweep_flops(&self) -> u64 {
        self.interior_points() as u64 * self.flops as u64
    }

    /// Arithmetic intensity in FLOPs per byte under a *no-reuse* model:
    /// every read goes to DRAM. The performance model refines this with
    /// the reuse the optimizations actually achieve.
    pub fn naive_intensity(&self) -> f64 {
        let bytes = (self.reads_per_point + self.write_arrays) as f64 * 8.0;
        self.flops as f64 / bytes
    }

    /// Halo width in points along each dimension.
    pub fn halo(&self) -> usize {
        self.order as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StencilSpec {
        StencilSpec {
            name: "t",
            grid: [16, 16, 16],
            order: 1,
            flops: 10,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 7,
            coefficients: 2,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        }
    }

    #[test]
    fn interior_excludes_halo() {
        let s = spec();
        assert_eq!(s.interior_points(), 14 * 14 * 14);
        assert_eq!(s.total_points(), 16 * 16 * 16);
    }

    #[test]
    fn interior_saturates_for_tiny_grids() {
        let mut s = spec();
        s.grid = [2, 16, 16];
        s.order = 2;
        assert_eq!(s.interior_points(), 0);
    }

    #[test]
    fn sweep_flops_scales_with_interior() {
        let s = spec();
        assert_eq!(s.sweep_flops(), (14 * 14 * 14) as u64 * 10);
    }

    #[test]
    fn naive_intensity_matches_hand_count() {
        let s = spec();
        // 7 reads + 1 write = 8 accesses * 8 bytes = 64 bytes for 10 flops.
        assert!((s.naive_intensity() - 10.0 / 64.0).abs() < 1e-12);
    }
}
