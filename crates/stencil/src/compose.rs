//! Multi-stage composite kernel definitions.
//!
//! A [`KernelDef`] is a small dataflow program over named arrays: each
//! [`Stage`] sweeps the grid once and writes one temporary or output array
//! as a sum of [`Term`]s, each term a scalar times a product of [`Factor`]s
//! (point reads or tap sums). This is expressive enough to state the
//! high-FLOP seismic kernels of Table III (hypterm, addsgd4/6, rhs4center)
//! with realistic operation counts and access patterns, while staying
//! analyzable: FLOPs, halo margins and read counts are all derived from the
//! definition and feed the GPU performance model and the code generator.

use crate::grid::Grid3;
use crate::tap::TapStencil;

/// Reference to one of the kernel's arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayRef {
    /// `k`-th input array (read-only).
    Input(usize),
    /// `k`-th temporary array (written by one stage, read by later ones).
    Temp(usize),
    /// `k`-th output array.
    Output(usize),
}

/// One multiplicative factor of a term.
#[derive(Debug, Clone, PartialEq)]
pub enum Factor {
    /// The array value at the point being computed.
    Point(ArrayRef),
    /// A linear tap sum over the array around the point.
    Taps(ArrayRef, TapStencil),
}

impl Factor {
    /// Chebyshev radius of the reads this factor performs.
    pub fn radius(&self) -> u32 {
        match self {
            Factor::Point(_) => 0,
            Factor::Taps(_, s) => s.radius(),
        }
    }

    /// The array this factor reads.
    pub fn array(&self) -> ArrayRef {
        match self {
            Factor::Point(a) => *a,
            Factor::Taps(a, _) => *a,
        }
    }

    /// FLOPs of one evaluation of this factor.
    pub fn flops(&self) -> u32 {
        match self {
            Factor::Point(_) => 0,
            Factor::Taps(_, s) => s.flops(),
        }
    }

    /// Number of grid points this factor reads.
    pub fn reads(&self) -> u32 {
        match self {
            Factor::Point(_) => 1,
            Factor::Taps(_, s) => s.len() as u32,
        }
    }
}

/// `coeff · Π factors`.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Scalar coefficient.
    pub coeff: f64,
    /// Multiplied factors; must be non-empty.
    pub factors: Vec<Factor>,
}

impl Term {
    /// A term with coefficient 1.
    pub fn of(factors: Vec<Factor>) -> Self {
        Term { coeff: 1.0, factors }
    }

    /// A term with an explicit coefficient.
    pub fn scaled(coeff: f64, factors: Vec<Factor>) -> Self {
        Term { coeff, factors }
    }

    /// FLOPs of one evaluation: factor FLOPs, one multiply between
    /// consecutive factors, and one multiply for a non-unit coefficient.
    pub fn flops(&self) -> u32 {
        let inner: u32 = self.factors.iter().map(Factor::flops).sum();
        let joins = self.factors.len() as u32 - 1;
        let coeff_mul = u32::from(self.coeff != 1.0 && self.coeff != -1.0);
        inner + joins + coeff_mul
    }
}

/// One grid sweep writing `out` as a sum of terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Destination array (must be `Temp` or `Output`).
    pub out: ArrayRef,
    /// Summed terms; must be non-empty.
    pub terms: Vec<Term>,
}

impl Stage {
    /// Construct and validate a stage.
    ///
    /// # Panics
    /// Panics if the destination is an input, or any term is empty.
    pub fn new(out: ArrayRef, terms: Vec<Term>) -> Self {
        assert!(!matches!(out, ArrayRef::Input(_)), "stages cannot write inputs");
        assert!(!terms.is_empty(), "a stage needs at least one term");
        for t in &terms {
            assert!(!t.factors.is_empty(), "a term needs at least one factor");
        }
        Stage { out, terms }
    }

    /// FLOPs of one point of this stage (term FLOPs plus the adds joining
    /// terms).
    pub fn flops(&self) -> u32 {
        let inner: u32 = self.terms.iter().map(Term::flops).sum();
        inner + (self.terms.len() as u32 - 1)
    }

    /// Largest tap radius used by this stage.
    pub fn radius(&self) -> u32 {
        self.terms.iter().flat_map(|t| t.factors.iter()).map(Factor::radius).max().unwrap_or(0)
    }

    /// Evaluate the stage at one point given resolver access to arrays.
    #[inline]
    pub fn eval(&self, arrays: &Arrays<'_>, x: usize, y: usize, z: usize) -> f64 {
        let mut sum = 0.0;
        for term in &self.terms {
            let mut prod = term.coeff;
            for f in &term.factors {
                prod *= match f {
                    Factor::Point(a) => arrays.get(*a).get(x, y, z),
                    Factor::Taps(a, s) => s.eval(arrays.get(*a), x, y, z),
                };
            }
            sum += prod;
        }
        sum
    }
}

/// Borrowed view of all arrays during interpretation.
pub struct Arrays<'a> {
    /// Input grids.
    pub inputs: &'a [Grid3],
    /// Temporary grids.
    pub temps: &'a [Grid3],
    /// Output grids.
    pub outputs: &'a [Grid3],
}

impl<'a> Arrays<'a> {
    /// Resolve an array reference.
    #[inline]
    pub fn get(&self, r: ArrayRef) -> &Grid3 {
        match r {
            ArrayRef::Input(i) => &self.inputs[i],
            ArrayRef::Temp(i) => &self.temps[i],
            ArrayRef::Output(i) => &self.outputs[i],
        }
    }
}

/// A complete composite kernel: array arity plus an ordered stage list.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Number of input arrays.
    pub n_inputs: usize,
    /// Number of temporary arrays.
    pub n_temps: usize,
    /// Number of output arrays.
    pub n_outputs: usize,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl KernelDef {
    /// Construct and validate a kernel definition: stage destinations and
    /// factor sources must be in range, temps must be written before read,
    /// and no stage may read its own destination (sweeps are gather-only).
    ///
    /// # Panics
    /// Panics on any structural violation.
    pub fn new(n_inputs: usize, n_temps: usize, n_outputs: usize, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "a kernel needs at least one stage");
        let in_range = |r: ArrayRef| match r {
            ArrayRef::Input(i) => i < n_inputs,
            ArrayRef::Temp(i) => i < n_temps,
            ArrayRef::Output(i) => i < n_outputs,
        };
        let mut temp_written = vec![false; n_temps];
        for st in &stages {
            assert!(in_range(st.out), "stage destination out of range: {:?}", st.out);
            for t in &st.terms {
                for f in &t.factors {
                    let src = f.array();
                    assert!(in_range(src), "factor source out of range: {src:?}");
                    assert_ne!(src, st.out, "a stage cannot read its own destination");
                    if let ArrayRef::Temp(i) = src {
                        assert!(temp_written[i], "temp {i} read before written");
                    }
                }
            }
            if let ArrayRef::Temp(i) = st.out {
                temp_written[i] = true;
            }
        }
        KernelDef { n_inputs, n_temps, n_outputs, stages }
    }

    /// Total FLOPs per output point, summing every stage's per-point cost
    /// amortized as one evaluation each (all stages sweep the same grid).
    pub fn flops_per_point(&self) -> u32 {
        self.stages.iter().map(Stage::flops).sum()
    }

    /// Largest single tap radius anywhere in the kernel (= the paper's
    /// stencil *order*).
    pub fn max_tap_radius(&self) -> u32 {
        self.stages.iter().map(Stage::radius).max().unwrap_or(0)
    }

    /// Number of *input-array* grid reads per output point across all
    /// stages. Temporaries are excluded: generated GPU code keeps the
    /// per-point dataflow in registers, so only input taps reach the
    /// memory system.
    pub fn reads_per_point(&self) -> u32 {
        self.stages
            .iter()
            .flat_map(|s| s.terms.iter())
            .flat_map(|t| t.factors.iter())
            .filter(|f| matches!(f.array(), ArrayRef::Input(_)))
            .map(Factor::reads)
            .sum()
    }

    /// Per-array halo margins: `margins.0[i]` for temps, `margins.1[i]`
    /// for outputs. A stage's destination margin is the maximum over its
    /// reads of (source margin + factor radius); inputs have margin 0.
    /// A point of an array is only valid if it is at least `margin` away
    /// from every face of the grid.
    pub fn margins(&self) -> (Vec<u32>, Vec<u32>) {
        let mut temp_m = vec![0u32; self.n_temps];
        let mut out_m = vec![0u32; self.n_outputs];
        for st in &self.stages {
            let mut m = 0u32;
            for t in &st.terms {
                for f in &t.factors {
                    let src_m = match f.array() {
                        ArrayRef::Input(_) => 0,
                        ArrayRef::Temp(i) => temp_m[i],
                        ArrayRef::Output(i) => out_m[i],
                    };
                    m = m.max(src_m + f.radius());
                }
            }
            match st.out {
                ArrayRef::Temp(i) => temp_m[i] = temp_m[i].max(m),
                ArrayRef::Output(i) => out_m[i] = out_m[i].max(m),
                ArrayRef::Input(_) => unreachable!("validated in new()"),
            }
        }
        (temp_m, out_m)
    }

    /// The widest output margin: comparisons between executors are made on
    /// points at least this far from every face.
    pub fn valid_margin(&self) -> u32 {
        let (_, out_m) = self.margins();
        out_m.into_iter().max().unwrap_or(0)
    }

    /// Number of scalar coefficients appearing in the definition
    /// (candidates for GPU constant memory).
    pub fn coefficient_count(&self) -> u32 {
        let mut n = 0u32;
        for st in &self.stages {
            for t in &st.terms {
                if t.coeff != 1.0 && t.coeff != -1.0 {
                    n += 1;
                }
                for f in &t.factors {
                    if let Factor::Taps(_, s) = f {
                        n += s
                            .taps()
                            .iter()
                            .filter(|tp| tp.coeff != 1.0 && tp.coeff != -1.0)
                            .count() as u32;
                    }
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::TapStencil;

    fn simple_def() -> KernelDef {
        // temp0 = star7(in0); out0 = 0.5*in0 + temp0*in1
        KernelDef::new(
            2,
            1,
            1,
            vec![
                Stage::new(
                    ArrayRef::Temp(0),
                    vec![Term::of(vec![Factor::Taps(
                        ArrayRef::Input(0),
                        TapStencil::star7(0.4, 0.1),
                    )])],
                ),
                Stage::new(
                    ArrayRef::Output(0),
                    vec![
                        Term::scaled(0.5, vec![Factor::Point(ArrayRef::Input(0))]),
                        Term::of(vec![
                            Factor::Point(ArrayRef::Temp(0)),
                            Factor::Point(ArrayRef::Input(1)),
                        ]),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn flops_counted_per_stage() {
        let def = simple_def();
        // Stage 1: star7 = 7 muls + 6 adds = 13.
        // Stage 2: term1 = 1 coeff mul; term2 = 1 join mul; + 1 add = 3.
        assert_eq!(def.flops_per_point(), 16);
    }

    #[test]
    fn margins_cascade_through_temps() {
        let def = simple_def();
        let (temp_m, out_m) = def.margins();
        assert_eq!(temp_m, vec![1]); // star7 radius 1
        assert_eq!(out_m, vec![1]); // point-read of temp0 inherits margin 1
        assert_eq!(def.valid_margin(), 1);
    }

    #[test]
    fn margin_grows_when_taps_read_temps() {
        let def = KernelDef::new(
            1,
            1,
            1,
            vec![
                Stage::new(
                    ArrayRef::Temp(0),
                    vec![Term::of(vec![Factor::Taps(
                        ArrayRef::Input(0),
                        TapStencil::star7(1.0, 0.5),
                    )])],
                ),
                Stage::new(
                    ArrayRef::Output(0),
                    vec![Term::of(vec![Factor::Taps(
                        ArrayRef::Temp(0),
                        TapStencil::star7(1.0, 0.5),
                    )])],
                ),
            ],
        );
        assert_eq!(def.valid_margin(), 2); // 1 (temp) + 1 (outer taps)
        assert_eq!(def.max_tap_radius(), 1); // order stays 1
    }

    #[test]
    fn reads_per_point_counts_input_factors_only() {
        let def = simple_def();
        // 7 (star7 on in0) + 1 (in0) + 1 (in1); the temp0 read stays in
        // registers and is excluded.
        assert_eq!(def.reads_per_point(), 9);
    }

    #[test]
    #[should_panic(expected = "read before written")]
    fn temp_read_before_written_panics() {
        let _ = KernelDef::new(
            1,
            1,
            1,
            vec![Stage::new(
                ArrayRef::Output(0),
                vec![Term::of(vec![Factor::Point(ArrayRef::Temp(0))])],
            )],
        );
    }

    #[test]
    #[should_panic(expected = "cannot read its own destination")]
    fn self_read_panics() {
        let _ = KernelDef::new(
            1,
            0,
            1,
            vec![Stage::new(
                ArrayRef::Output(0),
                vec![Term::of(vec![Factor::Point(ArrayRef::Output(0))])],
            )],
        );
    }

    #[test]
    #[should_panic(expected = "cannot write inputs")]
    fn write_input_panics() {
        let _ =
            Stage::new(ArrayRef::Input(0), vec![Term::of(vec![Factor::Point(ArrayRef::Input(0))])]);
    }

    #[test]
    fn coefficient_count_ignores_units() {
        let def = simple_def();
        // star7: 7 non-unit tap coeffs; stage2: one 0.5 coefficient.
        assert_eq!(def.coefficient_count(), 8);
    }
}
