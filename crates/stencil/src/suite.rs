//! The eight 3-D double-precision evaluation stencils of Table III.
//!
//! Every kernel is stated as a [`KernelDef`] dataflow whose derived
//! properties (tap radius = stencil order, FLOPs per point, array counts)
//! track the figures the paper reports. The numeric coefficients are
//! representative, not lifted from the original applications — the tuner
//! never looks at them; it only sees the structural [`StencilSpec`] and the
//! runtime behaviour the GPU model derives from it. What matters for the
//! reproduction is that each kernel really *computes* (the CPU executor
//! runs it and the transformation-equivalence tests hold) and that its
//! resource profile matches the paper's description.

use crate::compose::{ArrayRef, Factor, KernelDef, Stage, Term};
use crate::pattern::{StencilClass, StencilShape, StencilSpec};
use crate::tap::TapStencil;

/// A named stencil kernel: the paper-facing spec plus the executable
/// definition.
#[derive(Debug, Clone)]
pub struct StencilKernel {
    /// Static description (Table III row).
    pub spec: StencilSpec,
    /// Executable dataflow definition.
    pub def: KernelDef,
}

const A: fn(usize) -> ArrayRef = ArrayRef::Input;
const T: fn(usize) -> ArrayRef = ArrayRef::Temp;
const O: fn(usize) -> ArrayRef = ArrayRef::Output;

fn taps(a: ArrayRef, s: TapStencil) -> Factor {
    Factor::Taps(a, s)
}

fn pt(a: ArrayRef) -> Factor {
    Factor::Point(a)
}

/// `j3d7pt`: order-1 7-point Jacobi, the canonical bandwidth-bound stencil.
pub fn j3d7pt() -> StencilKernel {
    let def = KernelDef::new(
        1,
        0,
        1,
        vec![Stage::new(
            O(0),
            vec![Term::of(vec![taps(A(0), TapStencil::star7(0.75, 1.0 / 24.0))])],
        )],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "j3d7pt",
            grid: [512, 512, 512],
            order: 1,
            flops: 10,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 7,
            coefficients: 2,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `j3d27pt`: order-1 27-point box Jacobi, coefficients factored by
/// Chebyshev distance class (center / face / edge / corner) as hand-written
/// implementations do.
pub fn j3d27pt() -> StencilKernel {
    let def = KernelDef::new(
        1,
        0,
        1,
        vec![Stage::new(
            O(0),
            vec![
                Term::scaled(0.50, vec![pt(A(0))]),
                Term::scaled(0.40 / 6.0, vec![taps(A(0), TapStencil::box_class(1))]),
                Term::scaled(0.08 / 12.0, vec![taps(A(0), TapStencil::box_class(2))]),
                Term::scaled(0.02 / 8.0, vec![taps(A(0), TapStencil::box_class(3))]),
            ],
        )],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "j3d27pt",
            grid: [512, 512, 512],
            order: 1,
            flops: 32,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 27,
            coefficients: 4,
            shape: StencilShape::Box,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `helmholtz`: order-2 13-point star, `(αI − βΔh)` with a two-ring
/// discrete Laplacian.
pub fn helmholtz() -> StencilKernel {
    let def = KernelDef::new(
        1,
        0,
        1,
        vec![Stage::new(
            O(0),
            vec![
                Term::scaled(1.6, vec![pt(A(0))]),
                Term::scaled(-0.0833, vec![taps(A(0), TapStencil::box_class(1))]),
                Term::scaled(
                    0.0052,
                    vec![{
                        // Second ring: the six ±2 axis neighbors.
                        let mut t = Vec::new();
                        for ax in 0..3usize {
                            for s in [2i32, -2] {
                                let mut o = [0i32; 3];
                                o[ax] = s;
                                t.push(crate::tap::Tap::new(o[0], o[1], o[2], 1.0));
                            }
                        }
                        taps(A(0), TapStencil::new(t))
                    }],
                ),
            ],
        )],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "helmholtz",
            grid: [512, 512, 512],
            order: 2,
            flops: 17,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 13,
            coefficients: 3,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `cheby`: one step of a Chebyshev-accelerated Jacobi smoother.
/// Arrays: `u`, `u_prev`, `rhs`, `diag_inv` in; `u_new` out (5 I/O arrays).
pub fn cheby() -> StencilKernel {
    let (u, uprev, rhs, dinv) = (A(0), A(1), A(2), A(3));
    // temp0 = A·u with a grouped 27-point operator (order stays 1).
    let apply_a = Stage::new(
        T(0),
        vec![
            Term::scaled(2.4, vec![pt(u)]),
            Term::scaled(-0.3, vec![taps(u, TapStencil::box_class(1))]),
            Term::scaled(-0.05, vec![taps(u, TapStencil::box_class(2))]),
            Term::scaled(-0.0125, vec![taps(u, TapStencil::box_class(3))]),
        ],
    );
    // u_new = u + ω(u − u_prev) + δ·D⁻¹·(rhs − A·u)
    let update = Stage::new(
        O(0),
        vec![
            Term::scaled(1.82, vec![pt(u)]),
            Term::scaled(-0.82, vec![pt(uprev)]),
            Term::scaled(0.91, vec![pt(dinv), pt(rhs)]),
            Term::scaled(-0.91, vec![pt(dinv), pt(T(0))]),
        ],
    );
    let def = KernelDef::new(4, 1, 1, vec![apply_a, update]);
    StencilKernel {
        spec: StencilSpec {
            name: "cheby",
            grid: [512, 512, 512],
            order: 1,
            flops: 38,
            io_arrays: 5,
            read_arrays: 4,
            write_arrays: 1,
            reads_per_point: 31,
            coefficients: 8,
            shape: StencilShape::Box,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// Eighth-order central-difference coefficients (radius 4), the classic
/// CNS/hypterm discretization.
fn d8(scale: f64) -> [f64; 4] {
    [0.8 * scale, -0.2 * scale, 0.038_095 * scale, -0.003_571 * scale]
}

/// `hypterm`: the hyperbolic flux term of a compressible Navier–Stokes
/// code. Inputs: ρ, u, v, w, p, E, plus staged pressure-velocity products;
/// outputs: five flux components. Order 4, hybrid pattern, ~360 FLOPs.
pub fn hypterm() -> StencilKernel {
    let (rho, u, v, w, p, e) = (A(0), A(1), A(2), A(3), A(4), A(5));
    let (q4x, q4y, q4z) = (A(6), A(7), A(8)); // precomputed ρ·vel products
    let vel = [u, v, w];
    let cons = [q4x, q4y, q4z];
    let mut stages = Vec::new();
    // temp_ax = p * vel_ax (pressure work terms for the energy flux).
    for (ax, &va) in vel.iter().enumerate() {
        stages.push(Stage::new(T(ax), vec![Term::of(vec![pt(p), pt(va)])]));
    }
    // Continuity: f0 = Σ_ax D8_ax(ρ·vel_ax).
    stages.push(Stage::new(
        O(0),
        (0..3)
            .map(|ax| Term::of(vec![taps(cons[ax], TapStencil::central_diff(ax, &d8(1.0)))]))
            .collect(),
    ));
    // Momentum: f_c = Σ_ax vel_ax · D8_ax(ρ·vel_c) + D8_c(p).
    for (c, &qc) in cons.iter().enumerate() {
        let mut terms: Vec<Term> = (0..3)
            .map(|ax| Term::of(vec![pt(vel[ax]), taps(qc, TapStencil::central_diff(ax, &d8(1.0)))]))
            .collect();
        terms.push(Term::of(vec![taps(p, TapStencil::central_diff(c, &d8(1.0)))]));
        stages.push(Stage::new(O(1 + c), terms));
    }
    // Energy: f4 = Σ_ax vel_ax · D8_ax(E) + Σ_ax D8_ax(p·vel_ax)
    //            + ρ · Σ_ax D8_ax(vel_ax)   (dilatation coupling term).
    let mut e_terms: Vec<Term> = (0..3)
        .map(|ax| Term::of(vec![pt(vel[ax]), taps(e, TapStencil::central_diff(ax, &d8(1.0)))]))
        .collect();
    for ax in 0..3 {
        e_terms.push(Term::of(vec![taps(T(ax), TapStencil::central_diff(ax, &d8(1.0)))]));
    }
    for (ax, &va) in vel.iter().enumerate() {
        e_terms.push(Term::of(vec![pt(rho), taps(va, TapStencil::central_diff(ax, &d8(0.4)))]));
    }
    stages.push(Stage::new(O(4), e_terms));
    let def = KernelDef::new(9, 3, 5, stages);
    StencilKernel {
        spec: StencilSpec {
            name: "hypterm",
            grid: [320, 320, 320],
            order: 4,
            flops: 358,
            io_arrays: 13,
            read_arrays: 8,
            write_arrays: 5,
            reads_per_point: 120,
            coefficients: 40,
            shape: StencilShape::Hybrid,
            class: StencilClass::ComputeBound,
        },
        def,
    }
}

/// Shared structure of the SW4 super-grid artificial dissipation kernels:
/// `up_c += ρ · Σ_ax Dᵣ(u_c − um_c)`-style terms with axis and plane
/// coupling, at dissipation radius `r`.
fn addsgd(radius: usize, name: &'static str, order: u32, flops: u32) -> StencilKernel {
    let r = radius;
    // Inputs: u1,u2,u3 (0-2), um1,um2,um3 (3-5), rho (6).
    let rho = A(6);
    let mut stages = Vec::new();
    // temp_c = u_c − um_c (predictor difference).
    for c in 0..3 {
        stages.push(Stage::new(
            T(c),
            vec![Term::of(vec![pt(A(c))]), Term::scaled(-1.0, vec![pt(A(3 + c))])],
        ));
    }
    // Symmetric dissipation operator coefficients, alternating-sign
    // binomial-like profile typical of D+D− compositions.
    let sym: Vec<f64> = (0..=r)
        .map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * (2.0 - k as f64 * 0.5) / (1 << k) as f64
        })
        .collect();
    let inner: Vec<f64> = vec![-2.0, 1.0];
    let corner: Vec<f64> = (0..r).map(|k| 0.25 / (k + 1) as f64).collect();
    for c in 0..3 {
        let uc = A(c);
        let umc = A(3 + c);
        let tc = T(c);
        let mut terms = Vec::new();
        for ax in 0..3 {
            // ρ · Dsym_r(u−um) · Dsym_1(u) — variable-coefficient dissipation.
            terms.push(Term::of(vec![
                pt(rho),
                taps(tc, TapStencil::sym_axis(ax, &sym)),
                taps(uc, TapStencil::sym_axis(ax, &inner)),
            ]));
            // ρ · Dsym_r(um) restoring term.
            terms.push(Term::scaled(0.5, vec![pt(rho), taps(umc, TapStencil::sym_axis(ax, &sym))]));
        }
        // Plane-diagonal coupling (xy, yz, xz).
        for (a, b) in [(0usize, 1usize), (1, 2), (0, 2)] {
            terms.push(Term::scaled(
                0.125,
                vec![pt(rho), taps(uc, TapStencil::plane_corners(a, b, &corner))],
            ));
        }
        stages.push(Stage::new(O(c), terms));
    }
    let def = KernelDef::new(7, 3, 3, stages);
    StencilKernel {
        spec: StencilSpec {
            name,
            grid: [320, 320, 320],
            order,
            flops,
            io_arrays: 10,
            read_arrays: 7,
            write_arrays: 3,
            reads_per_point: def.reads_per_point(),
            coefficients: def.coefficient_count(),
            shape: StencilShape::Hybrid,
            class: StencilClass::ComputeBound,
        },
        def,
    }
}

/// `addsgd4`: fourth-order SW4 super-grid dissipation (radius 2).
pub fn addsgd4() -> StencilKernel {
    addsgd(2, "addsgd4", 2, 373)
}

/// `addsgd6`: sixth-order SW4 super-grid dissipation (radius 3).
pub fn addsgd6() -> StencilKernel {
    addsgd(3, "addsgd6", 3, 626)
}

/// `rhs4center`: the interior right-hand-side operator of SW4's
/// elastic-wave solver: `L(u)_c = Σ_ax D_ax(μ D_ax u_c) + cross terms with
/// λ`, discretized at fourth-order accuracy (radius-2 taps, order 2).
pub fn rhs4center() -> StencilKernel {
    // Inputs: u1,u2,u3 (0-2), mu (3), la (4). Outputs: lu1..lu3.
    let mu = A(3);
    let la = A(4);
    let d4 = [2.0 / 3.0, -1.0 / 12.0];
    let sym4 = [-2.5, 4.0 / 3.0, -1.0 / 12.0];
    let corner = [0.25, -0.015_625];
    let mut stages = Vec::new();
    // temp(c*3+ax)   = μ · D4_ax(u_c)
    // temp(9+c*3+ax) = λ · D4_ax(u_c)
    for c in 0..3 {
        for ax in 0..3 {
            stages.push(Stage::new(
                T(c * 3 + ax),
                vec![Term::of(vec![pt(mu), taps(A(c), TapStencil::central_diff(ax, &d4))])],
            ));
            stages.push(Stage::new(
                T(9 + c * 3 + ax),
                vec![Term::of(vec![pt(la), taps(A(c), TapStencil::central_diff(ax, &d4))])],
            ));
        }
    }
    for c in 0..3 {
        let mut terms = Vec::new();
        // Divergence of the μ-scaled gradients.
        for ax in 0..3 {
            terms.push(Term::of(vec![taps(T(c * 3 + ax), TapStencil::central_diff(ax, &d4))]));
            terms.push(Term::scaled(
                0.5,
                vec![taps(T(9 + c * 3 + ax), TapStencil::central_diff(ax, &d4))],
            ));
        }
        // (λ+μ) grad-div coupling against the other components.
        for other in 0..3 {
            if other != c {
                terms.push(Term::of(vec![taps(
                    T(9 + other * 3 + c),
                    TapStencil::central_diff(other, &d4),
                )]));
            }
        }
        // Direct second-derivative terms with point-wise moduli.
        for ax in 0..3 {
            terms.push(Term::of(vec![pt(mu), taps(A(c), TapStencil::sym_axis(ax, &sym4))]));
        }
        // Mixed-derivative plane terms.
        for (a, b) in [(0usize, 1usize), (1, 2), (0, 2)] {
            terms
                .push(Term::of(vec![pt(la), taps(A(c), TapStencil::plane_corners(a, b, &corner))]));
        }
        stages.push(Stage::new(O(c), terms));
    }
    let def = KernelDef::new(5, 18, 3, stages);
    StencilKernel {
        spec: StencilSpec {
            name: "rhs4center",
            grid: [320, 320, 320],
            order: 2,
            flops: 666,
            io_arrays: 8,
            read_arrays: 5,
            write_arrays: 3,
            reads_per_point: def.reads_per_point(),
            coefficients: def.coefficient_count(),
            shape: StencilShape::Hybrid,
            class: StencilClass::ComputeBound,
        },
        def,
    }
}

/// All eight evaluation kernels in the paper's Table III order.
pub fn all_kernels() -> Vec<StencilKernel> {
    vec![j3d7pt(), j3d27pt(), helmholtz(), cheby(), hypterm(), addsgd4(), addsgd6(), rhs4center()]
}

/// All eight specs (no executable definitions).
pub fn all_specs() -> Vec<StencilSpec> {
    all_kernels().into_iter().map(|k| k.spec).collect()
}

/// Look up a kernel by its paper name.
pub fn kernel_by_name(name: &str) -> Option<StencilKernel> {
    all_kernels().into_iter().find(|k| k.spec.name == name)
}

/// Look up a spec by its paper name.
pub fn spec_by_name(name: &str) -> Option<StencilSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_kernels_in_table_order() {
        let names: Vec<_> = all_kernels().iter().map(|k| k.spec.name).collect();
        assert_eq!(
            names,
            [
                "j3d7pt",
                "j3d27pt",
                "helmholtz",
                "cheby",
                "hypterm",
                "addsgd4",
                "addsgd6",
                "rhs4center"
            ]
        );
    }

    #[test]
    fn orders_match_table_iii() {
        let orders: Vec<_> = all_kernels().iter().map(|k| k.spec.order).collect();
        assert_eq!(orders, [1, 1, 2, 1, 4, 2, 3, 2]);
    }

    #[test]
    fn grids_match_table_iii() {
        for k in all_kernels() {
            let expect = if k.spec.class == StencilClass::MemoryBound {
                [512, 512, 512]
            } else {
                [320, 320, 320]
            };
            assert_eq!(k.spec.grid, expect, "{}", k.spec.name);
        }
    }

    #[test]
    fn io_arrays_match_table_iii() {
        let io: Vec<_> = all_kernels().iter().map(|k| k.spec.io_arrays).collect();
        assert_eq!(io, vec![2, 2, 2, 5, 13, 10, 10, 8]);
    }

    #[test]
    fn def_radius_equals_declared_order() {
        for k in all_kernels() {
            assert_eq!(k.def.max_tap_radius(), k.spec.order, "order mismatch for {}", k.spec.name);
        }
    }

    #[test]
    fn def_array_counts_match_spec() {
        for k in all_kernels() {
            assert_eq!(k.def.n_outputs as u32, k.spec.write_arrays, "{}", k.spec.name);
        }
    }

    #[test]
    fn def_flops_track_paper_figures() {
        for k in all_kernels() {
            let derived = k.def.flops_per_point() as f64;
            let paper = k.spec.flops as f64;
            let ratio = derived / paper;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "{}: derived {derived} vs paper {paper} (ratio {ratio:.2})",
                k.spec.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("hypterm").is_some());
        assert!(kernel_by_name("nonexistent").is_none());
        assert_eq!(spec_by_name("cheby").unwrap().io_arrays, 5);
    }

    #[test]
    fn flops_ordering_matches_complexity() {
        // The paper's ordering: rhs4center > addsgd6 > addsgd4 ≈ hypterm ≫ j3d7pt.
        let f = |n: &str| kernel_by_name(n).unwrap().def.flops_per_point();
        assert!(f("rhs4center") > f("addsgd6"));
        assert!(f("addsgd6") > f("addsgd4"));
        assert!(f("addsgd4") > f("j3d27pt"));
        assert!(f("j3d27pt") > f("j3d7pt"));
    }
}
