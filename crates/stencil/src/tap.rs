//! Linear tap-based stencils and the composite kernel dataflow IR.
//!
//! Two levels of expressiveness:
//!
//! - [`TapStencil`]: a single linear combination of neighbor taps over one
//!   input array — enough for the Jacobi/Helmholtz class and for the loop
//!   transformation equivalence tests.
//! - [`KernelDef`] (see [`crate::suite`]): multi-stage dataflow over several
//!   arrays built from [`Tap`] sums, used to express the high-FLOP seismic
//!   kernels with realistic operation counts.

/// A single stencil tap: a signed offset and its coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Offset along x.
    pub dx: i32,
    /// Offset along y.
    pub dy: i32,
    /// Offset along z.
    pub dz: i32,
    /// Multiplicative coefficient.
    pub coeff: f64,
}

impl Tap {
    /// Convenience constructor.
    pub const fn new(dx: i32, dy: i32, dz: i32, coeff: f64) -> Self {
        Tap { dx, dy, dz, coeff }
    }

    /// Chebyshev (max) radius of the tap.
    pub fn radius(&self) -> u32 {
        self.dx.unsigned_abs().max(self.dy.unsigned_abs()).max(self.dz.unsigned_abs())
    }
}

/// A linear stencil: `out(p) = Σ_t coeff_t · in(p + offset_t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TapStencil {
    taps: Vec<Tap>,
    radius: u32,
}

impl TapStencil {
    /// Build from a tap list.
    ///
    /// # Panics
    /// Panics if the tap list is empty.
    pub fn new(taps: Vec<Tap>) -> Self {
        assert!(!taps.is_empty(), "a stencil needs at least one tap");
        let radius = taps.iter().map(Tap::radius).max().unwrap();
        TapStencil { taps, radius }
    }

    /// The classic 7-point star: `center` weight plus one `side` weight on
    /// each of the six axis neighbors.
    pub fn star7(center: f64, side: f64) -> Self {
        let mut taps = vec![Tap::new(0, 0, 0, center)];
        for (dx, dy, dz) in [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)] {
            taps.push(Tap::new(dx, dy, dz, side));
        }
        TapStencil::new(taps)
    }

    /// A full box stencil of the given radius with per-distance weights
    /// `w[chebyshev distance]`.
    ///
    /// # Panics
    /// Panics if `w.len() != radius + 1`.
    pub fn full_box(radius: i32, w: &[f64]) -> Self {
        assert_eq!(w.len(), radius as usize + 1);
        let mut taps = Vec::new();
        for dz in -radius..=radius {
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let d = dx.abs().max(dy.abs()).max(dz.abs()) as usize;
                    taps.push(Tap::new(dx, dy, dz, w[d]));
                }
            }
        }
        TapStencil::new(taps)
    }

    /// Unit-coefficient taps at Chebyshev distance 1 with exactly
    /// `nonzero` non-zero offset components: `1` selects the 6 face
    /// neighbors, `2` the 12 edge neighbors, `3` the 8 corner neighbors.
    ///
    /// # Panics
    /// Panics unless `nonzero` is 1, 2 or 3.
    pub fn box_class(nonzero: u32) -> Self {
        assert!((1..=3).contains(&nonzero), "nonzero must be 1, 2 or 3");
        let mut taps = Vec::new();
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let n = [dx, dy, dz].iter().filter(|&&d| d != 0).count() as u32;
                    if n == nonzero {
                        taps.push(Tap::new(dx, dy, dz, 1.0));
                    }
                }
            }
        }
        TapStencil::new(taps)
    }

    /// Diagonal "corner" taps in the plane spanned by two axes: offsets
    /// `(±k, ±k)` for `k = 1..=radius` with coefficient `c[k-1]` (sign
    /// `+` when the two offsets agree, `-` when they differ — the pattern
    /// of a mixed second derivative).
    pub fn plane_corners(axis_a: usize, axis_b: usize, c: &[f64]) -> Self {
        assert!(axis_a < 3 && axis_b < 3 && axis_a != axis_b, "need two distinct axes");
        let mut taps = Vec::new();
        for (k, &ck) in c.iter().enumerate() {
            let k = (k + 1) as i32;
            for (sa, sb) in [(1, 1), (-1, -1), (1, -1), (-1, 1)] {
                let mut off = [0i32; 3];
                off[axis_a] = sa * k;
                off[axis_b] = sb * k;
                let sign = if sa == sb { 1.0 } else { -1.0 };
                taps.push(Tap::new(off[0], off[1], off[2], sign * ck));
            }
        }
        TapStencil::new(taps)
    }

    /// Central-difference taps of the given radius along one axis
    /// (0 = x, 1 = y, 2 = z), antisymmetric coefficients `c[k]` applied as
    /// `+c[k]` at `+k` and `-c[k]` at `-k` for `k = 1..=radius`.
    pub fn central_diff(axis: usize, c: &[f64]) -> Self {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let mut taps = Vec::new();
        for (k, &ck) in c.iter().enumerate() {
            let k = (k + 1) as i32;
            let mut plus = [0i32; 3];
            plus[axis] = k;
            let mut minus = [0i32; 3];
            minus[axis] = -k;
            taps.push(Tap::new(plus[0], plus[1], plus[2], ck));
            taps.push(Tap::new(minus[0], minus[1], minus[2], -ck));
        }
        TapStencil::new(taps)
    }

    /// Symmetric second-derivative-style taps along one axis:
    /// coefficient `c[0]` at the center, `c[k]` at `±k`.
    pub fn sym_axis(axis: usize, c: &[f64]) -> Self {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        assert!(!c.is_empty());
        let mut taps = vec![Tap::new(0, 0, 0, c[0])];
        for (k, &ck) in c.iter().enumerate().skip(1) {
            let k = k as i32;
            let mut plus = [0i32; 3];
            plus[axis] = k;
            let mut minus = [0i32; 3];
            minus[axis] = -k;
            taps.push(Tap::new(plus[0], plus[1], plus[2], ck));
            taps.push(Tap::new(minus[0], minus[1], minus[2], ck));
        }
        TapStencil::new(taps)
    }

    /// The taps.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Chebyshev radius over all taps (= required halo width).
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether there are no taps (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Evaluate the stencil at an interior point of `g`.
    #[inline]
    pub fn eval(&self, g: &crate::Grid3, x: usize, y: usize, z: usize) -> f64 {
        let mut acc = 0.0;
        for t in &self.taps {
            acc += t.coeff * g.at(x, y, z, t.dx, t.dy, t.dz);
        }
        acc
    }

    /// FLOPs of one evaluation: one multiply per non-unit coefficient plus
    /// `len - 1` additions (matching how hand-written kernels factor unit
    /// coefficients out of the multiply).
    pub fn flops(&self) -> u32 {
        let muls = self.taps.iter().filter(|t| t.coeff != 1.0 && t.coeff != -1.0).count() as u32;
        muls + (self.taps.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Grid3;

    #[test]
    fn star7_has_seven_taps_radius_one() {
        let s = TapStencil::star7(0.4, 0.1);
        assert_eq!(s.len(), 7);
        assert_eq!(s.radius(), 1);
    }

    #[test]
    fn full_box_counts() {
        let s = TapStencil::full_box(1, &[1.0, 0.5]);
        assert_eq!(s.len(), 27);
        assert_eq!(s.radius(), 1);
        let s2 = TapStencil::full_box(2, &[1.0, 0.5, 0.25]);
        assert_eq!(s2.len(), 125);
        assert_eq!(s2.radius(), 2);
    }

    #[test]
    fn central_diff_is_antisymmetric() {
        let s = TapStencil::central_diff(1, &[0.8, -0.2]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.radius(), 2);
        // Constant field: derivative must be zero.
        let g = Grid3::from_fn(8, 8, 8, |_, _, _| 3.0);
        assert!(s.eval(&g, 4, 4, 4).abs() < 1e-12);
        // Linear-in-y field: (0.8*1 - 0.2*2) * 2 slope contributions.
        let g = Grid3::from_fn(8, 8, 8, |_, y, _| y as f64);
        let expect = 2.0 * (0.8 * 1.0 + (-0.2) * 2.0);
        assert!((s.eval(&g, 4, 4, 4) - expect).abs() < 1e-12);
    }

    #[test]
    fn sym_axis_taps() {
        let s = TapStencil::sym_axis(2, &[-2.0, 1.0]);
        assert_eq!(s.len(), 3);
        // Discrete Laplacian along z of z^2 field is 2.
        let g = Grid3::from_fn(8, 8, 8, |_, _, z| (z * z) as f64);
        assert!((s.eval(&g, 4, 4, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eval_matches_hand_computation() {
        let g = Grid3::synthetic(10, 10, 10);
        let s = TapStencil::star7(0.5, 0.1);
        let hand = 0.5 * g.get(5, 5, 5)
            + 0.1
                * (g.get(6, 5, 5)
                    + g.get(4, 5, 5)
                    + g.get(5, 6, 5)
                    + g.get(5, 4, 5)
                    + g.get(5, 5, 6)
                    + g.get(5, 5, 4));
        // Same additions in a different order — allow rounding slack.
        assert!((s.eval(&g, 5, 5, 5) - hand).abs() < 1e-12);
    }

    #[test]
    fn flops_skips_unit_coefficients() {
        let s = TapStencil::new(vec![
            Tap::new(0, 0, 0, 1.0),
            Tap::new(1, 0, 0, -1.0),
            Tap::new(0, 1, 0, 0.5),
        ]);
        // 1 multiply (0.5) + 2 additions.
        assert_eq!(s.flops(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panic() {
        let _ = TapStencil::new(vec![]);
    }

    #[test]
    fn box_classes_partition_the_shell() {
        assert_eq!(TapStencil::box_class(1).len(), 6);
        assert_eq!(TapStencil::box_class(2).len(), 12);
        assert_eq!(TapStencil::box_class(3).len(), 8);
        // Unit coefficients mean zero multiplies.
        assert_eq!(TapStencil::box_class(3).flops(), 7);
    }

    #[test]
    fn plane_corners_mixed_derivative() {
        let s = TapStencil::plane_corners(0, 1, &[0.25]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.radius(), 1);
        // d2/dxdy of x*y is 1 with the (1/4)(++ + -- - +- - -+) formula.
        let g = Grid3::from_fn(8, 8, 8, |x, y, _| (x * y) as f64);
        assert!((s.eval(&g, 4, 4, 4) - 1.0).abs() < 1e-12);
    }
}
