//! CPU execution of composite kernels: the semantic ground truth.
//!
//! Three executors over the same [`KernelDef`]:
//!
//! - [`run_reference`]: plain triple-nested interior sweep per stage.
//! - [`run_reference_parallel`]: rayon z-slab decomposition per stage.
//! - [`run_transformed`]: traverses each sweep in the *transformed* order
//!   implied by a tuning setting — block merging, cyclic merging, loop
//!   unrolling (chunked with remainder handling) and z-streaming tiles —
//!   and must produce bit-identical output, validating that the loop
//!   transformations the tuner explores are semantics-preserving.
//!
//! Every output point is computed by an identical expression tree, so all
//! three agree bitwise, not just within floating-point tolerance.

use crate::compose::{ArrayRef, Arrays, KernelDef, Stage};
use crate::grid::Grid3;
use rayon::prelude::*;

/// Loop-transformation configuration mirroring the merging / unrolling /
/// streaming parameters of the tuning space (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformCfg {
    /// Block-merging factors `[BMx, BMy, BMz]`: each logical thread
    /// computes a contiguous block of this many points per dimension.
    pub bm: [usize; 3],
    /// Cyclic-merging strides `[CMx, CMy, CMz]`: each logical thread
    /// computes points separated by `extent / cm` along the dimension.
    pub cm: [usize; 3],
    /// Unroll factors `[UFx, UFy, UFz]`: the innermost loops are emitted
    /// in fixed-trip chunks with an explicit remainder loop.
    pub uf: [usize; 3],
    /// Whether to stream over the streaming dimension in tiles.
    pub streaming: bool,
    /// Streaming dimension (0 = x, 1 = y, 2 = z).
    pub sd: usize,
    /// Streaming tile extent (concurrent-streaming block size).
    pub sb: usize,
}

impl Default for TransformCfg {
    fn default() -> Self {
        TransformCfg { bm: [1; 3], cm: [1; 3], uf: [1; 3], streaming: false, sd: 2, sb: 1 }
    }
}

fn alloc_temps(def: &KernelDef, dims: [usize; 3]) -> Vec<Grid3> {
    (0..def.n_temps).map(|_| Grid3::zeros(dims[0], dims[1], dims[2])).collect()
}

fn stage_bounds(margin: u32, dims: [usize; 3]) -> Option<[(usize, usize); 3]> {
    let m = margin as usize;
    let mut b = [(0usize, 0usize); 3];
    for d in 0..3 {
        if dims[d] < 2 * m + 1 {
            return None;
        }
        b[d] = (m, dims[d] - m);
    }
    Some(b)
}

/// Per-stage write margin: the margin of the *destination* array as
/// computed by [`KernelDef::margins`].
fn stage_margins(def: &KernelDef) -> Vec<u32> {
    let (temp_m, out_m) = def.margins();
    def.stages
        .iter()
        .map(|st| match st.out {
            ArrayRef::Temp(i) => temp_m[i],
            ArrayRef::Output(i) => out_m[i],
            ArrayRef::Input(_) => unreachable!("KernelDef validated"),
        })
        .collect()
}

fn run_stage_seq(
    stage: &Stage,
    margin: u32,
    inputs: &[Grid3],
    temps: &mut [Grid3],
    outputs: &mut [Grid3],
    dims: [usize; 3],
) {
    let Some(b) = stage_bounds(margin, dims) else { return };
    // Compute into a scratch vector first so the arrays view stays immutable
    // during evaluation, then commit. The scratch is the destination-sized
    // interior region only.
    let mut vals = Vec::with_capacity((b[0].1 - b[0].0) * (b[1].1 - b[1].0) * (b[2].1 - b[2].0));
    {
        let arrays = Arrays { inputs, temps, outputs };
        for z in b[2].0..b[2].1 {
            for y in b[1].0..b[1].1 {
                for x in b[0].0..b[0].1 {
                    vals.push(stage.eval(&arrays, x, y, z));
                }
            }
        }
    }
    let dst = match stage.out {
        ArrayRef::Temp(i) => &mut temps[i],
        ArrayRef::Output(i) => &mut outputs[i],
        ArrayRef::Input(_) => unreachable!(),
    };
    let mut it = vals.into_iter();
    for z in b[2].0..b[2].1 {
        for y in b[1].0..b[1].1 {
            for x in b[0].0..b[0].1 {
                dst.set(x, y, z, it.next().unwrap());
            }
        }
    }
}

/// Run the kernel sequentially over the interior, allocating temporaries
/// internally. `inputs.len()` must equal `def.n_inputs` and all grids must
/// share the outputs' extents.
///
/// # Panics
/// Panics on arity or shape mismatch.
pub fn run_reference(def: &KernelDef, inputs: &[Grid3], outputs: &mut [Grid3]) {
    check_arity(def, inputs, outputs);
    let dims = outputs[0].dims();
    let mut temps = alloc_temps(def, dims);
    let margins = stage_margins(def);
    for (stage, &m) in def.stages.iter().zip(&margins) {
        run_stage_seq(stage, m, inputs, &mut temps, outputs, dims);
    }
}

fn check_arity(def: &KernelDef, inputs: &[Grid3], outputs: &mut [Grid3]) {
    assert_eq!(inputs.len(), def.n_inputs, "input arity mismatch");
    assert_eq!(outputs.len(), def.n_outputs, "output arity mismatch");
    let dims = outputs[0].dims();
    for g in inputs.iter().chain(outputs.iter()) {
        assert_eq!(g.dims(), dims, "all grids must share extents");
    }
}

/// Run the kernel with rayon-parallel z-slab sweeps per stage. Produces
/// bitwise-identical results to [`run_reference`].
pub fn run_reference_parallel(def: &KernelDef, inputs: &[Grid3], outputs: &mut [Grid3]) {
    check_arity(def, inputs, outputs);
    let dims = outputs[0].dims();
    let mut temps = alloc_temps(def, dims);
    let margins = stage_margins(def);
    let plane = dims[0] * dims[1];
    for (stage, &m) in def.stages.iter().zip(&margins) {
        let Some(b) = stage_bounds(m, dims) else { continue };
        // Split the destination out of temps/outputs so the rest can be
        // shared immutably across worker threads.
        let (dst_is_temp, dst_idx) = match stage.out {
            ArrayRef::Temp(i) => (true, i),
            ArrayRef::Output(i) => (false, i),
            ArrayRef::Input(_) => unreachable!(),
        };
        let mut dst = if dst_is_temp {
            std::mem::replace(&mut temps[dst_idx], Grid3::zeros(1, 1, 1))
        } else {
            std::mem::replace(&mut outputs[dst_idx], Grid3::zeros(1, 1, 1))
        };
        {
            let arrays = Arrays { inputs, temps: &temps, outputs };
            let slabs = dst.z_slabs_mut(1);
            slabs.into_par_iter().for_each(|(z, slab)| {
                if z < b[2].0 || z >= b[2].1 {
                    return;
                }
                for y in b[1].0..b[1].1 {
                    for x in b[0].0..b[0].1 {
                        slab[x + dims[0] * y] = stage.eval(&arrays, x, y, z);
                    }
                }
                let _ = plane;
            });
        }
        if dst_is_temp {
            temps[dst_idx] = dst;
        } else {
            outputs[dst_idx] = dst;
        }
    }
}

/// Enumerate the 1-D interior indices `[lo, hi)` in the order induced by a
/// (block-merge, cyclic-merge) pair along one dimension. Every index is
/// visited exactly once; only the order changes.
fn merged_order(lo: usize, hi: usize, bm: usize, cm: usize) -> Vec<usize> {
    let n = hi - lo;
    let mut order = Vec::with_capacity(n);
    if n == 0 {
        return order;
    }
    // Cyclic merging partitions indices into `ceil(n / cm_stride)` classes
    // at stride `cm_stride`; block merging then walks blocks of `bm` inside
    // each class. cm == 1 and bm == 1 degenerate to the natural order.
    let cm_classes = cm.clamp(1, n);
    let stride = n.div_ceil(cm_classes);
    for start in 0..stride {
        let class: Vec<usize> =
            (0..cm_classes).map(|k| start + k * stride).filter(|&i| i < n).collect();
        for chunk in class.chunks(bm.max(1)) {
            for &i in chunk {
                order.push(lo + i);
            }
        }
    }
    // When cm == 1 the above yields blocks of size bm in natural order
    // interleaved by stride; normalize the degenerate case for clarity.
    if cm <= 1 {
        order.clear();
        let mut i = lo;
        while i < hi {
            let end = (i + bm.max(1)).min(hi);
            order.extend(i..end);
            i = end;
        }
    }
    order
}

/// Run the kernel visiting points in the transformed order of `cfg`.
/// Semantically identical to [`run_reference`]; used by the equivalence
/// tests that justify exploring these transformations at tuning time.
pub fn run_transformed(
    def: &KernelDef,
    inputs: &[Grid3],
    outputs: &mut [Grid3],
    cfg: &TransformCfg,
) {
    check_arity(def, inputs, outputs);
    let dims = outputs[0].dims();
    let mut temps = alloc_temps(def, dims);
    let margins = stage_margins(def);
    for (stage, &m) in def.stages.iter().zip(&margins) {
        let Some(b) = stage_bounds(m, dims) else { continue };
        let xs = merged_order(b[0].0, b[0].1, cfg.bm[0], cfg.cm[0]);
        let ys = merged_order(b[1].0, b[1].1, cfg.bm[1], cfg.cm[1]);
        let zs = merged_order(b[2].0, b[2].1, cfg.bm[2], cfg.cm[2]);
        // Streaming tiles the chosen dimension; tiles execute outermost.
        let (stream_axis, tile) =
            if cfg.streaming { (cfg.sd, cfg.sb.max(1)) } else { (2, usize::MAX) };
        let axes = [&xs, &ys, &zs];
        let stream_len = axes[stream_axis].len();
        let mut vals: Vec<(usize, usize, usize, f64)> =
            Vec::with_capacity(xs.len() * ys.len() * zs.len());
        {
            let arrays = Arrays { inputs, temps: &temps, outputs };
            let mut t0 = 0;
            while t0 < stream_len {
                let t1 = t0.saturating_add(tile).min(stream_len);
                let stream_slice = &axes[stream_axis][t0..t1];
                // Unrolled traversal: fixed-trip chunks plus remainder, as
                // generated code would emit.
                for &zi in if stream_axis == 2 { stream_slice } else { zs.as_slice() } {
                    for &yi in if stream_axis == 1 { stream_slice } else { ys.as_slice() } {
                        let inner: &[usize] =
                            if stream_axis == 0 { stream_slice } else { xs.as_slice() };
                        let ufx = cfg.uf[0].max(1);
                        let mut c = 0;
                        while c + ufx <= inner.len() {
                            // "Unrolled" body: ufx evaluations per trip.
                            for k in 0..ufx {
                                let xi = inner[c + k];
                                vals.push((xi, yi, zi, stage.eval(&arrays, xi, yi, zi)));
                            }
                            c += ufx;
                        }
                        for &xi in &inner[c..] {
                            vals.push((xi, yi, zi, stage.eval(&arrays, xi, yi, zi)));
                        }
                    }
                }
                t0 = t1;
            }
        }
        let dst = match stage.out {
            ArrayRef::Temp(i) => &mut temps[i],
            ArrayRef::Output(i) => &mut outputs[i],
            ArrayRef::Input(_) => unreachable!(),
        };
        for (x, y, z, v) in vals {
            dst.set(x, y, z, v);
        }
    }
}

/// Compare two output sets on the kernel's valid interior, returning the
/// maximum absolute difference.
pub fn max_diff_on_valid(def: &KernelDef, a: &[Grid3], b: &[Grid3]) -> f64 {
    let m = def.valid_margin() as usize;
    let mut worst = 0.0f64;
    for (ga, gb) in a.iter().zip(b) {
        let [nx, ny, nz] = ga.dims();
        if nx < 2 * m + 1 || ny < 2 * m + 1 || nz < 2 * m + 1 {
            continue;
        }
        for z in m..nz - m {
            for y in m..ny - m {
                for x in m..nx - m {
                    worst = worst.max((ga.get(x, y, z) - gb.get(x, y, z)).abs());
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    fn small_io(k: &suite::StencilKernel, n: usize) -> (Vec<Grid3>, Vec<Grid3>) {
        let inputs: Vec<Grid3> = (0..k.def.n_inputs)
            .map(|i| {
                Grid3::from_fn(n, n, n, |x, y, z| {
                    Grid3::synthetic(n, n, n).get(x, y, z) * (1.0 + i as f64 * 0.1)
                })
            })
            .collect();
        let outputs = vec![Grid3::zeros(n, n, n); k.def.n_outputs];
        (inputs, outputs)
    }

    #[test]
    fn merged_order_is_a_permutation() {
        for (bm, cm) in [(1, 1), (4, 1), (1, 4), (3, 5), (8, 2)] {
            let order = merged_order(2, 30, bm, cm);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (2..30).collect::<Vec<_>>(), "bm={bm} cm={cm}");
        }
    }

    #[test]
    fn merged_order_blocks_in_natural_order_without_cyclic() {
        assert_eq!(merged_order(0, 6, 2, 1), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reference_j3d7pt_matches_hand_star() {
        let k = suite::j3d7pt();
        let (inputs, mut out) = small_io(&k, 12);
        run_reference(&k.def, &inputs, &mut out);
        let g = &inputs[0];
        let hand = 0.75 * g.get(5, 6, 7)
            + (1.0 / 24.0)
                * (g.get(6, 6, 7)
                    + g.get(4, 6, 7)
                    + g.get(5, 7, 7)
                    + g.get(5, 5, 7)
                    + g.get(5, 6, 8)
                    + g.get(5, 6, 6));
        assert!((out[0].get(5, 6, 7) - hand).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for k in suite::all_kernels() {
            let n = (2 * k.def.valid_margin() as usize + 6).max(12);
            let (inputs, mut seq) = small_io(&k, n);
            let mut par = seq.clone();
            run_reference(&k.def, &inputs, &mut seq);
            run_reference_parallel(&k.def, &inputs, &mut par);
            assert_eq!(max_diff_on_valid(&k.def, &seq, &par), 0.0, "{}", k.spec.name);
        }
    }

    #[test]
    fn transformed_traversals_are_equivalent() {
        let cfgs = [
            TransformCfg { bm: [4, 2, 1], ..Default::default() },
            TransformCfg { cm: [2, 1, 4], ..Default::default() },
            TransformCfg { uf: [4, 1, 1], ..Default::default() },
            TransformCfg { streaming: true, sd: 2, sb: 4, ..Default::default() },
            TransformCfg {
                bm: [2, 2, 2],
                cm: [1, 3, 1],
                uf: [3, 1, 1],
                streaming: true,
                sd: 1,
                sb: 2,
            },
        ];
        for k in [suite::j3d7pt(), suite::helmholtz(), suite::cheby(), suite::addsgd4()] {
            let n = (2 * k.def.valid_margin() as usize + 6).max(14);
            let (inputs, mut base) = small_io(&k, n);
            run_reference(&k.def, &inputs, &mut base);
            for cfg in &cfgs {
                let mut out = vec![Grid3::zeros(n, n, n); k.def.n_outputs];
                run_transformed(&k.def, &inputs, &mut out, cfg);
                assert_eq!(
                    max_diff_on_valid(&k.def, &base, &out),
                    0.0,
                    "{} with {:?}",
                    k.spec.name,
                    cfg
                );
            }
        }
    }

    #[test]
    fn all_kernels_run_and_produce_nonzero_output() {
        for k in suite::all_kernels() {
            let n = (2 * k.def.valid_margin() as usize + 4).max(12);
            let (inputs, mut out) = small_io(&k, n);
            run_reference(&k.def, &inputs, &mut out);
            let m = k.def.valid_margin() as usize;
            let any_nonzero = out.iter().any(|g| {
                let [nx, ny, nz] = g.dims();
                (m..nz - m).any(|z| (m..ny - m).any(|y| (m..nx - m).any(|x| g.get(x, y, z) != 0.0)))
            });
            assert!(any_nonzero, "{} produced all zeros", k.spec.name);
        }
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn arity_mismatch_panics() {
        let k = suite::cheby();
        let mut out = vec![Grid3::zeros(8, 8, 8)];
        run_reference(&k.def, &[Grid3::zeros(8, 8, 8)], &mut out);
    }
}
