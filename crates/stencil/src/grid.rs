//! Dense 3-D grids with flat storage and halo-aware iteration.

use std::fmt;

/// A dense 3-D grid of `f64` stored in a single flat allocation.
///
/// Storage is x-fastest (`idx = x + nx * (y + ny * z)`), matching both the
/// CUDA layout the paper's kernels use (x is the coalesced dimension) and
/// the cache-friendly CPU sweep order of the reference executor.
#[derive(Clone, PartialEq)]
pub struct Grid3 {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Grid3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid3")
            .field("nx", &self.nx)
            .field("ny", &self.ny)
            .field("nz", &self.nz)
            .field("len", &self.data.len())
            .finish()
    }
}

impl Grid3 {
    /// Create a zero-initialized grid of extent `nx × ny × nz`.
    ///
    /// # Panics
    /// Panics if any extent is zero or the total size overflows `usize`.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        let len = nx.checked_mul(ny).and_then(|v| v.checked_mul(nz)).expect("grid size overflow");
        Grid3 { nx, ny, nz, data: vec![0.0; len] }
    }

    /// Create a grid filled with a deterministic smooth function of the
    /// coordinates, useful for reproducible correctness tests.
    pub fn synthetic(nx: usize, ny: usize, nz: usize) -> Self {
        let mut g = Self::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    // A smooth, non-separable field so transposed or shifted
                    // indexing bugs change the result.
                    let v = (x as f64 * 0.37).sin()
                        + (y as f64 * 0.23).cos() * 1.5
                        + (z as f64 * 0.11).sin() * 0.5
                        + (x as f64 * y as f64 * 1e-3).cos() * 0.25;
                    g.set(x, y, z, v);
                }
            }
        }
        g
    }

    /// Create a grid from an explicit closure over coordinates.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    g.set(x, y, z, f(x, y, z));
                }
            }
        }
        g
    }

    /// Grid extent along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid extent along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Grid extent along z.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Extents as a `[nx, ny, nz]` array.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Total number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has no points (never true for a constructed grid).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(x, y, z)`.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Read the value at `(x, y, z)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Read with signed offsets from `(x, y, z)`; callers must stay in bounds.
    #[inline(always)]
    pub fn at(&self, x: usize, y: usize, z: usize, dx: i32, dy: i32, dz: i32) -> f64 {
        let xi = (x as isize + dx as isize) as usize;
        let yi = (y as isize + dy as isize) as usize;
        let zi = (z as isize + dz as isize) as usize;
        self.data[self.idx(xi, yi, zi)]
    }

    /// Write the value at `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Split the grid into mutable z-slabs of `slab_nz` planes each (the
    /// last slab may be shorter). This is the rayon decomposition unit of
    /// the parallel executor: slabs are disjoint so they can be updated
    /// concurrently without synchronization.
    pub fn z_slabs_mut(&mut self, slab_nz: usize) -> Vec<(usize, &mut [f64])> {
        assert!(slab_nz > 0);
        let plane = self.nx * self.ny;
        let mut out = Vec::new();
        let mut z0 = 0;
        let mut rest: &mut [f64] = &mut self.data;
        while z0 < self.nz {
            let take = slab_nz.min(self.nz - z0);
            let (head, tail) = rest.split_at_mut(take * plane);
            out.push((z0, head));
            rest = tail;
            z0 += take;
        }
        out
    }

    /// Maximum absolute difference from another grid of identical extents.
    ///
    /// # Panics
    /// Panics if the extents differ.
    pub fn max_abs_diff(&self, other: &Grid3) -> f64 {
        assert_eq!(self.dims(), other.dims(), "grid shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Sum of all points (useful as a cheap checksum in tests).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_x_fastest() {
        let g = Grid3::zeros(4, 3, 2);
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 12);
        assert_eq!(g.idx(3, 2, 1), 23);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = Grid3::zeros(5, 5, 5);
        g.set(2, 3, 4, 7.5);
        assert_eq!(g.get(2, 3, 4), 7.5);
        assert_eq!(g.get(4, 3, 2), 0.0);
    }

    #[test]
    fn at_applies_signed_offsets() {
        let g = Grid3::synthetic(8, 8, 8);
        assert_eq!(g.at(4, 4, 4, -1, 2, -3), g.get(3, 6, 1));
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = Grid3::synthetic(6, 7, 8);
        let b = Grid3::synthetic(6, 7, 8);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn synthetic_is_not_constant() {
        let g = Grid3::synthetic(8, 8, 8);
        let first = g.get(0, 0, 0);
        assert!(g.as_slice().iter().any(|&v| v != first));
    }

    #[test]
    fn z_slabs_cover_grid_disjointly() {
        let mut g = Grid3::zeros(4, 4, 10);
        let slabs = g.z_slabs_mut(3);
        let zs: Vec<usize> = slabs.iter().map(|(z, _)| *z).collect();
        assert_eq!(zs, vec![0, 3, 6, 9]);
        let total: usize = slabs.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 4 * 4 * 10);
        assert_eq!(slabs.last().unwrap().1.len(), 4 * 4); // short tail slab
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Grid3::synthetic(5, 5, 5);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 1, 1, b.get(1, 1, 1) + 0.25);
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "grid extents must be positive")]
    fn zero_extent_panics() {
        let _ = Grid3::zeros(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "grid shape mismatch")]
    fn diff_shape_mismatch_panics() {
        let a = Grid3::zeros(4, 4, 4);
        let b = Grid3::zeros(4, 4, 5);
        let _ = a.max_abs_diff(&b);
    }
}
