//! Extension kernels beyond the paper's Table III suite.
//!
//! The paper positions csTuner as *scalable*: new stencil patterns plug
//! into the same pipeline without touching the tuner (§IV-A "the csTuner
//! pipeline can be extended to incorporate more optimization parameters
//! capturing future stencil optimizations"). These kernels exercise that
//! claim — different shapes, array arities and FLOP intensities, all
//! expressed in the same [`KernelDef`] IR and therefore tunable, simulable
//! and code-generatable with zero tuner changes.

use crate::compose::{ArrayRef, KernelDef, Stage, Term};
use crate::pattern::{StencilClass, StencilShape, StencilSpec};
use crate::suite::StencilKernel;
use crate::tap::TapStencil;

const A: fn(usize) -> ArrayRef = ArrayRef::Input;
const O: fn(usize) -> ArrayRef = ArrayRef::Output;

fn taps(a: ArrayRef, s: TapStencil) -> crate::compose::Factor {
    crate::compose::Factor::Taps(a, s)
}

fn pt(a: ArrayRef) -> crate::compose::Factor {
    crate::compose::Factor::Point(a)
}

/// `j3d13pt`: order-2 star Jacobi — the classic high-order Laplacian
/// smoother (axis taps at ±1 and ±2).
pub fn j3d13pt() -> StencilKernel {
    let ring = |k: i32, w: f64| {
        let mut t = Vec::new();
        for ax in 0..3usize {
            for s in [k, -k] {
                let mut o = [0i32; 3];
                o[ax] = s;
                t.push(crate::tap::Tap::new(o[0], o[1], o[2], w));
            }
        }
        TapStencil::new(t)
    };
    let def = KernelDef::new(
        1,
        0,
        1,
        vec![Stage::new(
            O(0),
            vec![
                Term::scaled(0.5, vec![pt(A(0))]),
                Term::of(vec![taps(A(0), ring(1, 0.0667))]),
                Term::of(vec![taps(A(0), ring(2, 0.0167))]),
            ],
        )],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "j3d13pt",
            grid: [512, 512, 512],
            order: 2,
            flops: 26,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 13,
            coefficients: 3,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `poisson`: one weighted-Jacobi iteration of the 3-D Poisson equation
/// with an explicit right-hand side (`u_new = ω/6·(Σ neighbors − h²·f) +
/// (1−ω)·u`).
pub fn poisson() -> StencilKernel {
    let def = KernelDef::new(
        2,
        0,
        1,
        vec![Stage::new(
            O(0),
            vec![
                Term::scaled(0.1333, vec![pt(A(0))]),
                Term::scaled(0.1444, vec![taps(A(0), TapStencil::box_class(1))]),
                Term::scaled(-0.1444, vec![pt(A(1))]),
            ],
        )],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "poisson",
            grid: [512, 512, 512],
            order: 1,
            flops: 12,
            io_arrays: 3,
            read_arrays: 2,
            write_arrays: 1,
            reads_per_point: 8,
            coefficients: 3,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `gradient3d`: central-difference gradient — one input field, three
/// output components. Exercises multi-output bandwidth-bound codegen.
pub fn gradient3d() -> StencilKernel {
    let stages = (0..3)
        .map(|ax| {
            Stage::new(
                O(ax),
                vec![Term::of(vec![taps(A(0), TapStencil::central_diff(ax, &[0.5]))])],
            )
        })
        .collect();
    let def = KernelDef::new(1, 0, 3, stages);
    StencilKernel {
        spec: StencilSpec {
            name: "gradient3d",
            grid: [512, 512, 512],
            order: 1,
            flops: 9,
            io_arrays: 4,
            read_arrays: 1,
            write_arrays: 3,
            reads_per_point: 6,
            coefficients: 3,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `fdtd3d`: a Yee-style update of the three H components from the three
/// E components (curl with one-sided differences) — six I/O arrays,
/// order 1, the canonical electromagnetic kernel family.
pub fn fdtd3d() -> StencilKernel {
    // H_x -= c·(dE_z/dy − dE_y/dz), cyclic in the components.
    let one_sided = |ax: usize| {
        let mut o_plus = [0i32; 3];
        o_plus[ax] = 1;
        TapStencil::new(vec![
            crate::tap::Tap::new(o_plus[0], o_plus[1], o_plus[2], 1.0),
            crate::tap::Tap::new(0, 0, 0, -1.0),
        ])
    };
    let c = 0.45;
    let mut stages = Vec::new();
    for hx in 0..3usize {
        let e_a = (hx + 2) % 3; // E component differentiated along axis (hx+1)%3
        let e_b = (hx + 1) % 3;
        stages.push(Stage::new(
            O(hx),
            vec![
                Term::of(vec![pt(A(3 + hx))]), // previous H
                Term::scaled(-c, vec![taps(A(e_a), one_sided((hx + 1) % 3))]),
                Term::scaled(c, vec![taps(A(e_b), one_sided((hx + 2) % 3))]),
            ],
        ));
    }
    let def = KernelDef::new(6, 0, 3, stages);
    StencilKernel {
        spec: StencilSpec {
            name: "fdtd3d",
            grid: [384, 384, 384],
            order: 1,
            flops: 24,
            io_arrays: 9,
            read_arrays: 6,
            write_arrays: 3,
            reads_per_point: 15,
            coefficients: 6,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// `biharmonic`: order-2 operator applied as a cascade of two Laplacians
/// (∇⁴u via an intermediate field) — exercises cascaded-stage margins and
/// device-helper code generation.
pub fn biharmonic() -> StencilKernel {
    use ArrayRef::Temp;
    let lap = || TapStencil::star7(-6.0, 1.0);
    let def = KernelDef::new(
        1,
        1,
        1,
        vec![
            Stage::new(Temp(0), vec![Term::of(vec![taps(A(0), lap())])]),
            Stage::new(O(0), vec![Term::scaled(0.01, vec![taps(Temp(0), lap())])]),
        ],
    );
    StencilKernel {
        spec: StencilSpec {
            name: "biharmonic",
            grid: [384, 384, 384],
            order: 1,
            flops: 30,
            io_arrays: 2,
            read_arrays: 1,
            write_arrays: 1,
            reads_per_point: 13,
            coefficients: 3,
            shape: StencilShape::Star,
            class: StencilClass::MemoryBound,
        },
        def,
    }
}

/// All extension kernels.
pub fn extension_kernels() -> Vec<StencilKernel> {
    vec![j3d13pt(), poisson(), gradient3d(), fdtd3d(), biharmonic()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{max_diff_on_valid, run_reference, run_transformed, TransformCfg};
    use crate::grid::Grid3;

    #[test]
    fn extensions_have_distinct_names() {
        let mut names: Vec<_> = extension_kernels().iter().map(|k| k.spec.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        // None shadow the paper suite.
        for n in names {
            assert!(crate::suite::spec_by_name(n).is_none(), "{n} collides with Table III");
        }
    }

    #[test]
    fn extension_radii_match_declared_order() {
        for k in extension_kernels() {
            assert_eq!(k.def.max_tap_radius(), k.spec.order, "{}", k.spec.name);
            assert_eq!(k.def.n_outputs as u32, k.spec.write_arrays, "{}", k.spec.name);
        }
    }

    #[test]
    fn extensions_execute_and_transform_equivalently() {
        let cfg = TransformCfg { bm: [2, 1, 2], uf: [2, 1, 1], ..Default::default() };
        for k in extension_kernels() {
            let n = (2 * k.def.valid_margin() as usize + 6).max(12);
            let inputs: Vec<Grid3> = (0..k.def.n_inputs)
                .map(|i| {
                    Grid3::from_fn(n, n, n, |x, y, z| ((x + 2 * y + 3 * z + i) as f64 * 0.05).cos())
                })
                .collect();
            let mut a = vec![Grid3::zeros(n, n, n); k.def.n_outputs];
            let mut b = a.clone();
            run_reference(&k.def, &inputs, &mut a);
            run_transformed(&k.def, &inputs, &mut b, &cfg);
            assert_eq!(max_diff_on_valid(&k.def, &a, &b), 0.0, "{}", k.spec.name);
        }
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let k = gradient3d();
        let n = 12;
        let input = Grid3::from_fn(n, n, n, |x, y, z| 2.0 * x as f64 - y as f64 + 0.5 * z as f64);
        let mut out = vec![Grid3::zeros(n, n, n); 3];
        run_reference(&k.def, &[input], &mut out);
        assert!((out[0].get(5, 5, 5) - 2.0).abs() < 1e-12);
        assert!((out[1].get(5, 5, 5) + 1.0).abs() < 1e-12);
        assert!((out[2].get(5, 5, 5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn biharmonic_annihilates_linear_fields() {
        let k = biharmonic();
        let n = 14;
        let input = Grid3::from_fn(n, n, n, |x, y, z| 3.0 * x as f64 + y as f64 - z as f64);
        let mut out = vec![Grid3::zeros(n, n, n)];
        run_reference(&k.def, &[input], &mut out);
        let m = k.def.valid_margin() as usize;
        for z in m..n - m {
            for y in m..n - m {
                for x in m..n - m {
                    assert!(out[0].get(x, y, z).abs() < 1e-9, "({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn fdtd_curl_of_constant_field_is_identity() {
        let k = fdtd3d();
        let n = 10;
        // Constant E: curl = 0 → H_new = H_old.
        let inputs: Vec<Grid3> =
            (0..6).map(|i| Grid3::from_fn(n, n, n, |_, _, _| 1.0 + i as f64)).collect();
        let mut out = vec![Grid3::zeros(n, n, n); 3];
        run_reference(&k.def, &inputs, &mut out);
        for (c, o) in out.iter().enumerate() {
            assert!((o.get(4, 4, 4) - (4.0 + c as f64)).abs() < 1e-12);
        }
    }
}
