//! Stencil intermediate representation and CPU reference execution.
//!
//! This crate provides the *workload* side of the csTuner reproduction:
//!
//! - [`Grid3`]: a dense, flat-allocated 3-D grid of `f64` values with halo
//!   support, the unit of data every stencil sweeps over.
//! - [`StencilSpec`]: the static description of a stencil kernel (order,
//!   FLOPs per point, number of I/O arrays, grid extents) that the GPU
//!   performance model, the parameter space and the code generator consume.
//! - [`suite`]: the eight 3-D double-precision stencils of Table III of the
//!   paper (`j3d7pt`, `j3d27pt`, `helmholtz`, `cheby`, `hypterm`, `addsgd4`,
//!   `addsgd6`, `rhs4center`).
//! - [`exec`]: sequential and rayon-parallel CPU executors used as the
//!   semantic ground truth: loop transformations that the tuner explores
//!   (merging, unrolling, streaming) are validated against them.
//!
//! The stencil *semantics* run on the CPU; their *performance* under a
//! parameter setting is predicted by the `cst-gpu-sim` crate (see DESIGN.md
//! for the hardware-substitution rationale).

pub mod compose;
pub mod exec;
pub mod grid;
pub mod pattern;
pub mod suite;
pub mod suite_ext;
pub mod tap;

pub use compose::{ArrayRef, Arrays, Factor, KernelDef, Stage, Term};
pub use exec::{run_reference, run_reference_parallel, run_transformed, TransformCfg};
pub use grid::Grid3;
pub use pattern::{StencilClass, StencilShape, StencilSpec};
pub use suite::{all_specs, kernel_by_name, spec_by_name, StencilKernel};
pub use tap::{Tap, TapStencil};
