//! Telemetry overhead on the evaluation hot path.
//!
//! The telemetry contract promises that the disabled (noop) handle costs
//! nothing measurable on the hot path — every counter/event call must
//! early-return before allocating. This bench pins that promise: the
//! same evaluation loop runs with the noop handle, with an in-memory
//! journal, and with a live JSONL file sink. The noop column must stay
//! within 5% of the untelemetered baseline (BENCH_eval.json records the
//! measured numbers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cst_gpu_sim::GpuArch;
use cst_space::Setting;
use cst_stencil::suite;
use cst_telemetry::Telemetry;
use cstuner_core::{Evaluator, SimEvaluator};
use std::hint::black_box;

fn population(seed: u64, n: usize) -> (SimEvaluator, Vec<Setting>) {
    let spec = suite::spec_by_name("rhs4center").unwrap();
    let mut drawer = SimEvaluator::new(spec.clone(), GpuArch::a100(), seed);
    let pop: Vec<Setting> = (0..n).map(|_| drawer.random_valid()).collect();
    (SimEvaluator::new(spec, GpuArch::a100(), seed), pop)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry-overhead");
    g.sample_size(20);
    let n = 64usize;
    let run = |tel: Telemetry| {
        move |b: &mut criterion::Bencher| {
            b.iter_batched(
                || {
                    let (mut e, pop) = population(9, n);
                    e.set_telemetry(&tel);
                    (e, pop)
                },
                |(mut e, pop)| {
                    let out: Vec<f64> = pop.iter().map(|s| e.evaluate(s)).collect();
                    black_box(out)
                },
                BatchSize::SmallInput,
            )
        }
    };
    g.bench_function("eval64/noop", run(Telemetry::noop()));
    g.bench_function("eval64/in_memory", run(Telemetry::in_memory()));
    let path = std::env::temp_dir().join("cst_telemetry_overhead_bench.jsonl");
    g.bench_function("eval64/jsonl", run(Telemetry::to_file(&path).expect("temp journal")));
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
