//! Micro-benchmarks of the concurrent evaluation engine:
//!
//! - the per-call cost of a footprint/cost-model evaluation with and
//!   without the simulator's shared memo (a cache hit must be far cheaper
//!   than a recompute — the hot path queries the same record for
//!   validity, measurement and clock charge),
//! - batch population evaluation through `Evaluator::evaluate_batch`
//!   (parallel prefetch + serial commit) against the plain serial
//!   `evaluate` loop on a cold evaluator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cst_gpu_sim::{GpuArch, GpuSim};
use cst_space::Setting;
use cst_stencil::suite;
use cstuner_core::{Evaluator, SimEvaluator};
use std::hint::black_box;

fn population(seed: u64, n: usize) -> (SimEvaluator, Vec<Setting>) {
    let spec = suite::spec_by_name("rhs4center").unwrap();
    // Draw with a throwaway evaluator: its validity checks warm its own
    // sim memo, so evaluation below must use a fresh one (fresh caches)
    // to measure the cold hot path.
    let mut drawer = SimEvaluator::new(spec.clone(), GpuArch::a100(), seed);
    let pop: Vec<Setting> = (0..n).map(|_| drawer.random_valid()).collect();
    (SimEvaluator::new(spec, GpuArch::a100(), seed), pop)
}

fn bench_footprint_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval-hot-path");
    let spec = suite::spec_by_name("rhs4center").unwrap();
    let cached = GpuSim::new(spec.clone(), GpuArch::a100());
    let uncached = GpuSim::new(spec, GpuArch::a100()).without_memo();
    let s = Setting::baseline();
    // Warm the cache once so the cached variant measures pure hits.
    let _ = cached.evaluate_full(&s);
    g.bench_function("record/memo_hit", |b| {
        b.iter(|| black_box(cached.evaluate_full(black_box(&s))))
    });
    g.bench_function("record/uncached", |b| {
        b.iter(|| black_box(uncached.evaluate_full(black_box(&s))))
    });
    // The full validity → measure → clock-charge triple for one fresh
    // setting: with the memo this computes one record, without it three.
    g.bench_function("triple/memoized", |b| {
        b.iter_batched(
            || GpuSim::new(suite::spec_by_name("rhs4center").unwrap(), GpuArch::a100()),
            |sim| {
                black_box(sim.resource_ok(&s));
                black_box(sim.kernel_time_ms(&s));
                black_box(sim.eval_cost_s(&s));
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("triple/uncached", |b| {
        b.iter(|| {
            black_box(uncached.resource_ok(&s));
            black_box(uncached.kernel_time_ms(&s));
            black_box(uncached.eval_cost_s(&s));
        })
    });
    g.finish();
}

/// The structure-of-arrays sweep (`GpuSim::evaluate_population`) against
/// a per-setting `evaluate_full` loop, both on a cold memo: the columnar
/// path decodes, footprints and costs the population in stage-major
/// passes and takes each memo shard lock once per batch instead of once
/// per setting.
fn bench_population_soa(c: &mut Criterion) {
    let mut g = c.benchmark_group("population-soa");
    g.sample_size(20);
    let spec = suite::spec_by_name("rhs4center").unwrap();
    let pop: Vec<Setting> = {
        let mut d = SimEvaluator::new(spec.clone(), GpuArch::a100(), 9);
        (0..256).map(|_| d.random_valid()).collect()
    };
    g.bench_function("soa/256", |b| {
        b.iter_batched(
            || GpuSim::new(spec.clone(), GpuArch::a100()),
            |sim| black_box(sim.evaluate_population(&pop)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("per-setting/256", |b| {
        b.iter_batched(
            || GpuSim::new(spec.clone(), GpuArch::a100()),
            |sim| {
                let out: Vec<_> = pop.iter().map(|s| sim.evaluate_full(s)).collect();
                black_box(out)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batch_vs_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("population-eval");
    g.sample_size(10);
    for n in [64usize, 256] {
        g.bench_function(format!("batch/{n}"), |b| {
            b.iter_batched(
                || population(9, n),
                |(mut e, pop)| black_box(e.evaluate_batch(&pop)),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("serial/{n}"), |b| {
            b.iter_batched(
                || population(9, n),
                |(mut e, pop)| {
                    let out: Vec<f64> = pop.iter().map(|s| e.evaluate(s)).collect();
                    black_box(out)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_footprint_cost, bench_population_soa, bench_batch_vs_serial);
criterion_main!(benches);
