//! Criterion micro-benchmarks of the tuner's hot components, one family
//! per experiment stage:
//!
//! - the GPU model evaluation (millions of calls per experiment),
//! - parameter-space validation and sampling,
//! - PMNF fitting (the `curve_fit` replacement),
//! - parameter grouping (Algorithm 1 incl. pairwise CVs),
//! - one GA generation,
//! - CUDA code generation,
//! - a small end-to-end tuning session.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cst_ga::{GaConfig, GaState, Genome};
use cst_gpu_sim::{GpuArch, GpuSim, ValidSpace};
use cst_space::{OptSpace, Setting};
use cst_stencil::suite;
use cstuner_core::{group_from_dataset, CsTuner, CsTunerConfig, PerfDataset, SimEvaluator, Tuner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sim_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu-sim");
    for name in ["j3d7pt", "rhs4center"] {
        let spec = suite::spec_by_name(name).unwrap();
        let sim = GpuSim::new(spec, GpuArch::a100());
        let s = Setting::baseline();
        g.bench_function(format!("kernel_time/{name}"), |b| {
            b.iter(|| black_box(sim.kernel_time_ms(black_box(&s))))
        });
        g.bench_function(format!("profile/{name}"), |b| {
            b.iter(|| black_box(sim.profile(black_box(&s))))
        });
    }
    g.finish();
}

fn bench_space(c: &mut Criterion) {
    let mut g = c.benchmark_group("space");
    let spec = suite::spec_by_name("j3d7pt").unwrap();
    let space = OptSpace::for_stencil(&spec);
    let s = Setting::baseline();
    g.bench_function("check_explicit", |b| {
        b.iter(|| black_box(space.check_explicit(black_box(&s))))
    });
    let vs = ValidSpace::new(space, GpuSim::new(spec, GpuArch::a100()));
    g.bench_function("random_valid", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(vs.random_valid(&mut rng)))
    });
    g.finish();
}

fn bench_pmnf(c: &mut Criterion) {
    let mut e = SimEvaluator::new(suite::spec_by_name("cheby").unwrap(), GpuArch::a100(), 2);
    let ds = PerfDataset::collect(&mut e, 64, 3);
    let xs = ds.param_values();
    let y = ds.times();
    let groups: Vec<Vec<usize>> = (0..cst_space::N_PARAMS).map(|i| vec![i]).collect();
    c.bench_function("pmnf/fit_64x19", |b| {
        b.iter(|| {
            black_box(cst_stats::fit_pmnf(
                black_box(&xs),
                black_box(&y),
                black_box(&groups),
                &[0, 1, 2],
                &[0, 1],
            ))
        })
    });
}

fn bench_grouping(c: &mut Criterion) {
    let mut e = SimEvaluator::new(suite::spec_by_name("addsgd4").unwrap(), GpuArch::a100(), 4);
    let ds = PerfDataset::collect(&mut e, 128, 5);
    c.bench_function("grouping/alg1_128rec", |b| {
        b.iter(|| black_box(group_from_dataset(black_box(&ds))))
    });
}

fn bench_ga(c: &mut Criterion) {
    c.bench_function("ga/step_2x16_13genes", |b| {
        b.iter_batched(
            || GaState::new(Genome::new(vec![32; 13]), GaConfig::default(), 7),
            |mut state| {
                let mut f = |g: &[u32]| -(g.iter().map(|&v| v as f64).sum::<f64>());
                state.step(&mut f);
                black_box(state.best().cloned())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("codegen");
    for name in ["j3d7pt", "rhs4center"] {
        let kernel = suite::kernel_by_name(name).unwrap();
        let s = Setting::baseline();
        g.bench_function(format!("generate/{name}"), |b| {
            b.iter(|| black_box(cst_codegen::generate_cuda(black_box(&kernel), black_box(&s))))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    g.sample_size(10);
    g.bench_function("cstuner/j3d7pt_5iter", |b| {
        b.iter(|| {
            let spec = suite::spec_by_name("j3d7pt").unwrap();
            let mut e = SimEvaluator::new(spec, GpuArch::a100(), 0);
            let cfg = CsTunerConfig {
                dataset_size: 48,
                max_iterations: 5,
                codegen_cap: 8,
                ..Default::default()
            };
            black_box(CsTuner::new(cfg).tune(&mut e, 0).unwrap().best_time_ms)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sim_eval,
    bench_space,
    bench_pmnf,
    bench_grouping,
    bench_ga,
    bench_codegen,
    bench_end_to_end
);
criterion_main!(benches);
