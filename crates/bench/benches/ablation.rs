//! Ablation benchmarks: how much tuning quality each csTuner design
//! choice buys, measured as the best kernel time found under a fixed small
//! budget (lower is better). Criterion measures the *wall* cost of each
//! variant; the quality numbers print alongside via the experiment binary
//! (`experiments -- ablation`).
//!
//! Variants (DESIGN.md "Ablations"):
//! 1. full          — the complete pipeline,
//! 2. no-grouping   — singleton groups (Algorithm 1 off),
//! 3. random-sampling — Garvey-style random cut (PMNF filter off),
//! 4. no-approximation — CV(top-n) stop disabled,
//! 5. no-migration  — isolated GA islands.

use criterion::{criterion_group, criterion_main, Criterion};
use cst_gpu_sim::GpuArch;
use cst_stencil::suite;
use cstuner_core::{CsTuner, CsTunerConfig, SamplingConfig, SimEvaluator, Tuner};
use std::hint::black_box;

fn variant(name: &str) -> CsTunerConfig {
    let mut cfg = CsTunerConfig { dataset_size: 48, codegen_cap: 8, ..Default::default() };
    match name {
        "full" => {}
        "no-grouping" => cfg.flat_grouping = true,
        "random-sampling" => {
            cfg.sampling = SamplingConfig { random_mode: Some(7), ..Default::default() }
        }
        "no-approximation" => cfg.cv_threshold = 0.0,
        "no-migration" => cfg.ga.migration_interval = u32::MAX,
        other => panic!("unknown variant {other}"),
    }
    cfg
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for name in ["full", "no-grouping", "random-sampling", "no-approximation", "no-migration"] {
        g.bench_function(format!("cheby_30s/{name}"), |b| {
            b.iter(|| {
                let spec = suite::spec_by_name("cheby").unwrap();
                let mut e = SimEvaluator::with_budget(spec, GpuArch::a100(), 1, 30.0);
                let out = CsTuner::new(variant(name)).tune(&mut e, 1).unwrap();
                black_box(out.best_time_ms)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
