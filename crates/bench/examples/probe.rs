//! Quick tuner-comparison sanity probe over a subset of the suite.
//!
//! Smaller and faster than the `experiments` binary — useful when
//! calibrating the performance model or a tuner change:
//!
//! ```text
//! cargo run -p cst-bench --release --example probe
//! ```

use cst_baselines::{ArtemisTuner, GarveyTuner, OpenTunerGa, RandomSearch};
use cst_gpu_sim::GpuArch;
use cstuner_core::{CsTuner, CsTunerConfig, SimEvaluator, Tuner};

fn main() {
    let seeds = 5u64;
    for name in ["j3d7pt", "cheby", "hypterm", "rhs4center"] {
        let spec = cst_stencil::spec_by_name(name).unwrap();
        println!("=== {name} (iso-time 100s, seed-avg over {seeds}) ===");
        let tuners: Vec<Box<dyn Fn() -> Box<dyn Tuner>>> = vec![
            Box::new(|| Box::new(CsTuner::new(CsTunerConfig::default()))),
            Box::new(|| Box::new(GarveyTuner::default())),
            Box::new(|| Box::new(OpenTunerGa::default())),
            Box::new(|| Box::new(ArtemisTuner::default())),
            Box::new(|| Box::new(RandomSearch::default())),
        ];
        for mk in &tuners {
            let mut acc = 0.0;
            let mut iters = 0.0;
            let mut nm = "";
            for seed in 0..seeds {
                let mut e = SimEvaluator::with_budget(spec.clone(), GpuArch::a100(), seed, 100.0);
                let mut t = mk();
                let out = t.tune(&mut e, seed).unwrap();
                acc += out.best_time_ms;
                iters += out.curve.last().unwrap().iteration as f64;
                nm = out.tuner;
            }
            println!(
                "  {:10} best={:8.3} ms  iters={:5.1}",
                nm,
                acc / seeds as f64,
                iters / seeds as f64
            );
        }
    }
}
