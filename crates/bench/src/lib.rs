//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§V) against the simulated GPU testbeds.
//!
//! Structure:
//! - [`landscape`]: the §III motivation studies — large random samples of
//!   the valid space per stencil feeding Figs. 2–4.
//! - [`runners`]: tuner construction and the iso-iteration / iso-time
//!   protocols of §V-B/C/D (Figs. 8–10), the sampling-ratio sweep
//!   (Fig. 11) and the pre-processing breakdown (Fig. 12).
//! - [`report`]: result types (serde-serializable) and markdown rendering,
//!   so `EXPERIMENTS.md` tables come straight from the harness output.
//!
//! Run everything with
//! `cargo run -p cst-bench --release --bin experiments -- all`.

pub mod landscape;
pub mod report;
pub mod runners;
