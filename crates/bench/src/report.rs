//! Result serialization and markdown rendering.
//!
//! Every experiment produces a [`Table`]: a header row plus data rows.
//! Tables render to GitHub markdown for EXPERIMENTS.md and serialize to
//! JSON under `results/` so downstream tooling can re-plot the figures.

use serde::{Serialize, Value};
use std::fmt::Write as _;
use std::path::Path;

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier, e.g. `"fig2"`.
    pub id: String,
    /// Human title, e.g. `"Fig. 2 — speedup distribution"`.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Serialize for Table {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("id".to_string(), self.id.to_value()),
            ("title".to_string(), self.title.to_value()),
            ("header".to_string(), self.header.to_value()),
            ("rows".to_string(), self.rows.to_value()),
        ])
    }
}

impl Table {
    /// Create a table with headers.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        writeln!(s, "### {}", self.title).unwrap();
        writeln!(s).unwrap();
        writeln!(s, "| {} |", self.header.join(" | ")).unwrap();
        writeln!(s, "|{}|", self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|"))
            .unwrap();
        for row in &self.rows {
            writeln!(s, "| {} |", row.join(" | ")).unwrap();
        }
        s
    }

    /// Write the table (plus arbitrary raw payload) as JSON into
    /// `dir/<id>.json`.
    pub fn write_json<T: Serialize>(&self, dir: &Path, raw: &T) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        struct Payload<'a, T> {
            table: &'a Table,
            raw: &'a T,
        }
        impl<T: Serialize> Serialize for Payload<'_, T> {
            fn to_value(&self) -> Value {
                Value::object(vec![
                    ("table".to_string(), self.table.to_value()),
                    ("raw".to_string(), self.raw.to_value()),
                ])
            }
        }
        let f = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        serde_json::to_writer_pretty(f, &Payload { table: self, raw })
            .map_err(std::io::Error::other)
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "∞".to_string()
    }
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_header_and_rows() {
        let mut t = Table::new("t1", "Test", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", "T", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("cst-bench-test");
        let t = Table::new("demo", "Demo", &["x"]);
        t.write_json(&dir, &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(body.contains("\"id\": \"demo\""));
        assert!(body.contains("\"raw\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(f64::INFINITY), "∞");
        assert_eq!(pct(0.051), "5.1%");
    }
}
