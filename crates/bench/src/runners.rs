//! Tuner-comparison protocols: iso-iteration (§V-B, Fig. 8), iso-time
//! (§V-C, Fig. 9; §V-D, Fig. 10), the sampling-ratio sweep (§V-E, Fig. 11)
//! and the pre-processing breakdown (§V-F, Fig. 12).

use cst_baselines::{ArtemisTuner, GarveyTuner, OpenTunerGa, RandomSearch};
use cst_gpu_sim::GpuArch;
use cst_stencil::StencilSpec;
use cstuner_core::{CsTuner, CsTunerConfig, SamplingConfig, SimEvaluator, Tuner, TuningOutcome};
use rayon::prelude::*;
use serde::{Serialize, Value};

/// The tuners of the §V comparison, constructed fresh per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TunerKind {
    /// The paper's contribution.
    CsTuner,
    /// Garvey & Abdelrahman (ICPP'15).
    Garvey,
    /// OpenTuner-style global GA.
    OpenTuner,
    /// Artemis-style hierarchical tuner.
    Artemis,
    /// Uniform random search (extra sanity baseline).
    Random,
}

impl TunerKind {
    /// The four tuners of the paper's comparison, in figure order.
    pub const PAPER: [TunerKind; 4] =
        [TunerKind::CsTuner, TunerKind::Garvey, TunerKind::OpenTuner, TunerKind::Artemis];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TunerKind::CsTuner => "csTuner",
            TunerKind::Garvey => "Garvey",
            TunerKind::OpenTuner => "OpenTuner",
            TunerKind::Artemis => "Artemis",
            TunerKind::Random => "Random",
        }
    }

    /// Build the tuner with the paper's §V-A options and the given
    /// iteration cap.
    pub fn build(self, max_iterations: u32) -> Box<dyn Tuner> {
        match self {
            TunerKind::CsTuner => {
                Box::new(CsTuner::new(CsTunerConfig { max_iterations, ..Default::default() }))
            }
            TunerKind::Garvey => Box::new(GarveyTuner { max_iterations, ..Default::default() }),
            TunerKind::OpenTuner => Box::new(OpenTunerGa { max_iterations, ..Default::default() }),
            TunerKind::Artemis => Box::new(ArtemisTuner { max_iterations, ..Default::default() }),
            TunerKind::Random => Box::new(RandomSearch { max_iterations, ..Default::default() }),
        }
    }
}

impl Serialize for TunerKind {
    fn to_value(&self) -> Value {
        // Match serde-derive's unit-variant encoding: the variant name.
        let variant = match self {
            TunerKind::CsTuner => "CsTuner",
            TunerKind::Garvey => "Garvey",
            TunerKind::OpenTuner => "OpenTuner",
            TunerKind::Artemis => "Artemis",
            TunerKind::Random => "Random",
        };
        Value::String(variant.to_string())
    }
}

/// One tuning run's curve, serializable for the JSON result files.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Stencil name.
    pub stencil: String,
    /// Tuner name.
    pub tuner: &'static str,
    /// Seed of this repetition.
    pub seed: u64,
    /// Final best kernel time (ms).
    pub best_ms: f64,
    /// (iteration, virtual seconds, best-so-far ms) triples.
    pub curve: Vec<(u32, f64, f64)>,
    /// Unique settings evaluated.
    pub evaluations: u64,
    /// Pre-processing seconds (grouping, sampling, codegen).
    pub preproc_s: [f64; 3],
    /// Virtual search seconds used.
    pub search_s: f64,
}

impl Serialize for RunResult {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("stencil".to_string(), self.stencil.to_value()),
            ("tuner".to_string(), self.tuner.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("best_ms".to_string(), self.best_ms.to_value()),
            ("curve".to_string(), self.curve.to_value()),
            ("evaluations".to_string(), self.evaluations.to_value()),
            ("preproc_s".to_string(), self.preproc_s.to_value()),
            ("search_s".to_string(), self.search_s.to_value()),
        ])
    }
}

fn to_run_result(stencil: &str, seed: u64, out: &TuningOutcome) -> RunResult {
    RunResult {
        stencil: stencil.to_string(),
        tuner: out.tuner,
        seed,
        best_ms: out.best_time_ms,
        curve: out.curve.iter().map(|p| (p.iteration, p.elapsed_s, p.best_ms)).collect(),
        evaluations: out.evaluations,
        preproc_s: [out.preproc.grouping_s, out.preproc.sampling_s, out.preproc.codegen_s],
        search_s: out.search_s,
    }
}

/// Run one tuner on one stencil under the iso-iteration protocol: a fixed
/// number of iterations, no time budget.
pub fn run_iso_iteration(
    spec: &StencilSpec,
    arch: &GpuArch,
    kind: TunerKind,
    iterations: u32,
    seed: u64,
) -> RunResult {
    let mut eval = SimEvaluator::new(spec.clone(), arch.clone(), seed);
    let mut tuner = kind.build(iterations);
    let out = tuner.tune(&mut eval, seed).expect("tuning run failed");
    to_run_result(spec.name, seed, &out)
}

/// Run one tuner on one stencil under the iso-time protocol: a fixed
/// virtual wall-clock budget (the paper uses 100 s), no iteration cap.
pub fn run_iso_time(
    spec: &StencilSpec,
    arch: &GpuArch,
    kind: TunerKind,
    budget_s: f64,
    seed: u64,
) -> RunResult {
    let mut eval = SimEvaluator::with_budget(spec.clone(), arch.clone(), seed, budget_s);
    let mut tuner = kind.build(u32::MAX);
    let out = tuner.tune(&mut eval, seed).expect("tuning run failed");
    to_run_result(spec.name, seed, &out)
}

/// Run a csTuner iso-time session with an explicit sampling ratio
/// (Fig. 11).
pub fn run_cstuner_with_ratio(
    spec: &StencilSpec,
    arch: &GpuArch,
    ratio: f64,
    budget_s: f64,
    seed: u64,
) -> RunResult {
    let mut eval = SimEvaluator::with_budget(spec.clone(), arch.clone(), seed, budget_s);
    let cfg = CsTunerConfig {
        sampling: SamplingConfig { ratio, ..Default::default() },
        ..Default::default()
    };
    let mut tuner = CsTuner::new(cfg);
    let out = tuner.tune(&mut eval, seed).expect("tuning run failed");
    to_run_result(spec.name, seed, &out)
}

/// Run a full (stencils × tuners × seeds) sweep in parallel with the given
/// per-run protocol. Deterministic: every run derives only from its own
/// descriptor.
pub fn sweep<F>(specs: &[StencilSpec], kinds: &[TunerKind], seeds: u64, run: F) -> Vec<RunResult>
where
    F: Fn(&StencilSpec, TunerKind, u64) -> RunResult + Sync,
{
    let mut jobs = Vec::new();
    for spec in specs {
        for &kind in kinds {
            for seed in 0..seeds {
                jobs.push((spec.clone(), kind, seed));
            }
        }
    }
    jobs.par_iter().map(|(spec, kind, seed)| run(spec, *kind, *seed)).collect()
}

/// Average the best-so-far value of a set of runs at a given iteration
/// (carrying the last known value forward; `None` until the first
/// iteration of every run has completed).
pub fn mean_best_at_iteration(runs: &[&RunResult], iter: u32) -> Option<f64> {
    let mut acc = 0.0;
    for r in runs {
        let v = r.curve.iter().take_while(|(i, _, _)| *i <= iter).last().map(|(_, _, b)| *b)?;
        acc += v;
    }
    Some(acc / runs.len() as f64)
}

/// Average the best-so-far value of a set of runs at a given virtual time,
/// carrying values forward after a tuner finishes early (the paper's
/// "missing points" in Fig. 8 are runs that exhausted their space).
pub fn mean_best_at_time(runs: &[&RunResult], t_s: f64) -> Option<f64> {
    let mut acc = 0.0;
    for r in runs {
        let v = r.curve.iter().take_while(|(_, e, _)| *e <= t_s).last().map(|(_, _, b)| *b)?;
        acc += v;
    }
    Some(acc / runs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_stencil::suite;

    #[test]
    fn iso_iteration_respects_cap() {
        let spec = suite::spec_by_name("j3d7pt").unwrap();
        let r = run_iso_iteration(&spec, &GpuArch::a100(), TunerKind::Random, 4, 0);
        assert!(r.curve.last().unwrap().0 <= 5);
        assert!(r.best_ms.is_finite());
    }

    #[test]
    fn iso_time_respects_budget() {
        let spec = suite::spec_by_name("j3d7pt").unwrap();
        let r = run_iso_time(&spec, &GpuArch::a100(), TunerKind::CsTuner, 30.0, 1);
        assert!(r.search_s <= 35.0, "search {}", r.search_s);
    }

    #[test]
    fn all_paper_tuners_run() {
        let spec = suite::spec_by_name("helmholtz").unwrap();
        for kind in TunerKind::PAPER {
            let r = run_iso_iteration(&spec, &GpuArch::a100(), kind, 3, 0);
            assert!(r.best_ms.is_finite(), "{:?}", kind);
            assert_eq!(r.tuner, kind.name());
        }
    }

    #[test]
    fn sweep_produces_all_combinations() {
        let specs = vec![suite::spec_by_name("j3d7pt").unwrap()];
        let runs = sweep(&specs, &[TunerKind::Random, TunerKind::Garvey], 2, |s, k, seed| {
            run_iso_iteration(s, &GpuArch::a100(), k, 2, seed)
        });
        assert_eq!(runs.len(), 4);
    }

    #[test]
    fn mean_best_carries_forward() {
        let r = RunResult {
            stencil: "x".into(),
            tuner: "t",
            seed: 0,
            best_ms: 5.0,
            curve: vec![(1, 1.0, 10.0), (2, 2.0, 5.0)],
            evaluations: 0,
            preproc_s: [0.0; 3],
            search_s: 2.0,
        };
        let rs = [&r];
        assert_eq!(mean_best_at_iteration(&rs, 1), Some(10.0));
        assert_eq!(mean_best_at_iteration(&rs, 50), Some(5.0));
        assert_eq!(mean_best_at_iteration(&rs, 0), None);
        assert_eq!(mean_best_at_time(&rs, 1.5), Some(10.0));
        assert_eq!(mean_best_at_time(&rs, 99.0), Some(5.0));
    }

    #[test]
    fn ratio_runner_accepts_range() {
        let spec = suite::spec_by_name("j3d7pt").unwrap();
        let r = run_cstuner_with_ratio(&spec, &GpuArch::a100(), 0.05, 20.0, 0);
        assert!(r.best_ms.is_finite());
    }
}
