//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p cst-bench --release --bin experiments -- <id> [--quick]
//! ```
//!
//! where `<id>` is one of `table1 table2 table3 fig2 fig3 fig4 fig8 fig9
//! fig10 fig11 fig12 ablation all`. `--quick` shrinks sample counts and
//! repetitions for smoke runs. Results print as markdown and are written
//! as JSON under `results/`.

use cst_bench::landscape::{
    fraction_at_least, pair_divergence_distribution, sample_landscape, speedup_distribution,
    top_n_speedup, Landscape,
};
use cst_bench::report::{f3, pct, Table};
use cst_bench::runners::{
    mean_best_at_iteration, mean_best_at_time, run_cstuner_with_ratio, run_iso_iteration,
    run_iso_time, sweep, RunResult, TunerKind,
};
use cst_gpu_sim::GpuArch;
use cst_space::{OptSpace, ParamId};
use cst_stencil::{all_specs, StencilSpec};
use cstuner_core::{CsTuner, CsTunerConfig, SamplingConfig, SimEvaluator, Tuner};
use std::path::PathBuf;

/// Experiment scale knobs.
struct Scale {
    landscape_n: usize,
    seeds: u64,
    ratio_seeds: u64,
    iso_iterations: u32,
    budget_s: f64,
}

impl Scale {
    /// Full scale. The paper repeats every tuning run 10×; on this
    /// single-core reproduction box we default to 5 repetitions to keep
    /// the whole suite under an hour — pass `--seeds N` to override.
    fn full() -> Self {
        Scale { landscape_n: 20_000, seeds: 5, ratio_seeds: 2, iso_iterations: 10, budget_s: 100.0 }
    }

    fn quick() -> Self {
        Scale { landscape_n: 2_000, seeds: 2, ratio_seeds: 1, iso_iterations: 4, budget_s: 30.0 }
    }
}

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn emit(table: Table, raw: &impl serde::Serialize) {
    println!("{}", table.to_markdown());
    if let Err(e) = table.write_json(&results_dir(), raw) {
        eprintln!("warning: could not write {}.json: {e}", table.id);
    }
}

// ---------------------------------------------------------------- tables --

fn table1() {
    let space = OptSpace::for_grid([512, 512, 512]);
    let mut t = Table::new(
        "table1",
        "Table I — the parameterized optimization space (512³ grid)",
        &["Optimization", "Parameter", "Range (live values)"],
    );
    for p in ParamId::ALL {
        let vals = space.values(p);
        let range = if vals.len() <= 3 {
            format!("{{{}}}", vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "))
        } else {
            format!("[{}, {}] pow2 ({} values)", vals[0], vals.last().unwrap(), vals.len())
        };
        t.push(vec![p.optimization().to_string(), p.name().to_string(), range]);
    }
    let log10 = space.log10_unconstrained_size();
    println!(
        "Unconstrained space: 10^{log10:.1} settings (paper: >10^8 after explicit constraints)\n"
    );
    emit(t, &log10);
}

fn table2() {
    let mut t = Table::new(
        "table2",
        "Table II — simulated hardware standing in for the testbeds",
        &["Field", "A100 (sim)", "V100 (sim)"],
    );
    let a = GpuArch::a100();
    let v = GpuArch::v100();
    let rows: Vec<(&str, String, String)> = vec![
        ("SMs", a.sm_count.to_string(), v.sm_count.to_string()),
        ("DRAM GB/s", a.dram_gbps.to_string(), v.dram_gbps.to_string()),
        ("FP64 GFLOP/s", a.fp64_gflops.to_string(), v.fp64_gflops.to_string()),
        ("L2 MiB", (a.l2_bytes / 1024 / 1024).to_string(), (v.l2_bytes / 1024 / 1024).to_string()),
        ("Shared/SM KiB", (a.shmem_per_sm / 1024).to_string(), (v.shmem_per_sm / 1024).to_string()),
        ("Registers/SM", a.regs_per_sm.to_string(), v.regs_per_sm.to_string()),
    ];
    for (k, av, vv) in rows {
        t.push(vec![k.to_string(), av, vv]);
    }
    emit(t, &"static");
}

fn table3() {
    let mut t = Table::new(
        "table3",
        "Table III — stencils used for evaluation",
        &["Stencil", "Input Grid", "Order", "# FLOPs", "# I/O Arrays"],
    );
    for s in all_specs() {
        t.push(vec![
            s.name.to_string(),
            format!("{}×{}×{}", s.grid[0], s.grid[1], s.grid[2]),
            s.order.to_string(),
            s.flops.to_string(),
            s.io_arrays.to_string(),
        ]);
    }
    emit(t, &"static");
}

// --------------------------------------------------------------- figures --

fn landscapes(scale: &Scale) -> Vec<Landscape> {
    all_specs()
        .iter()
        .map(|s| sample_landscape(s, &GpuArch::a100(), scale.landscape_n, 0xf16))
        .collect()
}

fn fig2(scale: &Scale) {
    let ls = landscapes(scale);
    let mut t = Table::new(
        "fig2",
        "Fig. 2 — speedup distribution of settings over the optimum",
        &["Stencil", "[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"],
    );
    let mut raw = Vec::new();
    let mut avg_top = 0.0;
    let mut avg_bottom = 0.0;
    for l in &ls {
        let bins = speedup_distribution(l);
        avg_top += fraction_at_least(l, 0.8);
        avg_bottom += bins[0];
        t.push(
            std::iter::once(l.stencil.to_string()).chain(bins.iter().map(|&b| pct(b))).collect(),
        );
        raw.push((l.stencil, bins));
    }
    let n = ls.len() as f64;
    println!(
        "Average within-20%-of-optimum fraction: {} (paper: 5.1%); ≥5× slowdown fraction: {} (paper: 24.2%)\n",
        pct(avg_top / n),
        pct(avg_bottom / n)
    );
    emit(t, &raw);
}

fn fig3(scale: &Scale) {
    let ls = landscapes(scale);
    let mut t = Table::new(
        "fig3",
        "Fig. 3 — distribution of parameter-pair divergence from the optimum",
        &["Stencil", "[0,20)%", "[20,40)%", "[40,60)%", "[60,80)%", "[80,100]%"],
    );
    let mut raw = Vec::new();
    let mut avg_diverging = 0.0;
    let mut avg_gt40 = 0.0;
    for l in &ls {
        let bins = pair_divergence_distribution(l);
        avg_diverging += 1.0 - bins[0];
        avg_gt40 += bins[2] + bins[3] + bins[4];
        t.push(
            std::iter::once(l.stencil.to_string()).chain(bins.iter().map(|&b| pct(b))).collect(),
        );
        raw.push((l.stencil, bins));
    }
    let n = ls.len() as f64;
    println!(
        "Average pairs diverging from optimum: {} (paper: 28.6% incl. weak pairs); >40% divergence: {} (paper: 22.3%)\n",
        pct(avg_diverging / n),
        pct(avg_gt40 / n)
    );
    emit(t, &raw);
}

fn fig4(scale: &Scale) {
    let ls = landscapes(scale);
    let mut t = Table::new(
        "fig4",
        "Fig. 4 — speedup of the top-n settings over the optimum",
        &["Stencil", "top-10", "top-50", "top-100"],
    );
    let mut raw = Vec::new();
    let mut sums = [0.0; 3];
    for l in &ls {
        let s = [top_n_speedup(l, 10), top_n_speedup(l, 50), top_n_speedup(l, 100)];
        for (acc, v) in sums.iter_mut().zip(s) {
            *acc += v;
        }
        t.push(vec![l.stencil.to_string(), pct(s[0]), pct(s[1]), pct(s[2])]);
        raw.push((l.stencil, s));
    }
    let n = ls.len() as f64;
    t.push(vec!["**average**".to_string(), pct(sums[0] / n), pct(sums[1] / n), pct(sums[2] / n)]);
    println!("(paper averages: 96.7% / 92.4% / 90.1%)\n");
    emit(t, &raw);
}

/// One labelled column of a convergence table: header text plus the
/// statistic extracted from a (stencil, tuner) subset of runs.
type ColumnFn = (String, Box<dyn Fn(&[&RunResult]) -> Option<f64>>);

fn curve_table(
    id: &str,
    title: &str,
    runs: &[RunResult],
    specs: &[StencilSpec],
    columns: &[ColumnFn],
) {
    let mut t = Table::new(
        id,
        title,
        &std::iter::once("Stencil / Tuner")
            .chain(columns.iter().map(|(h, _)| h.as_str()))
            .collect::<Vec<_>>(),
    );
    for spec in specs {
        for kind in TunerKind::PAPER {
            let subset: Vec<&RunResult> =
                runs.iter().filter(|r| r.stencil == spec.name && r.tuner == kind.name()).collect();
            if subset.is_empty() {
                continue;
            }
            let mut row = vec![format!("{} / {}", spec.name, kind.name())];
            for (_, f) in columns {
                row.push(f(&subset).map(f3).unwrap_or_else(|| "–".to_string()));
            }
            t.push(row);
        }
    }
    emit(t, &runs);
}

fn fig8(scale: &Scale) {
    let specs = all_specs();
    let iters = scale.iso_iterations;
    let runs = sweep(&specs, &TunerKind::PAPER, scale.seeds, |s, k, seed| {
        run_iso_iteration(s, &GpuArch::a100(), k, iters, seed)
    });
    let marks: Vec<u32> = (1..=iters).collect();
    let columns: Vec<ColumnFn> = marks
        .into_iter()
        .map(|i| {
            (
                format!("it {i}"),
                Box::new(move |rs: &[&RunResult]| mean_best_at_iteration(rs, i))
                    as Box<dyn Fn(&[&RunResult]) -> Option<f64>>,
            )
        })
        .collect();
    curve_table(
        "fig8",
        "Fig. 8 — iso-iteration comparison (mean best kernel ms; '–' = not yet / space exhausted)",
        &runs,
        &specs,
        &columns,
    );
}

fn fig9(scale: &Scale) {
    let specs = all_specs();
    let budget = scale.budget_s;
    let runs = sweep(&specs, &TunerKind::PAPER, scale.seeds, |s, k, seed| {
        run_iso_time(s, &GpuArch::a100(), k, budget, seed)
    });
    let marks: Vec<f64> = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0].iter().map(|f| f * budget).collect();
    let columns: Vec<ColumnFn> = marks
        .into_iter()
        .map(|t_s| {
            (
                format!("{t_s:.0}s"),
                Box::new(move |rs: &[&RunResult]| mean_best_at_time(rs, t_s))
                    as Box<dyn Fn(&[&RunResult]) -> Option<f64>>,
            )
        })
        .collect();
    curve_table(
        "fig9",
        "Fig. 9 — iso-time comparison on A100 (mean best kernel ms)",
        &runs,
        &specs,
        &columns,
    );
}

fn fig10(scale: &Scale) {
    let specs = all_specs();
    let budget = scale.budget_s;
    let runs = sweep(&specs, &TunerKind::PAPER, scale.seeds, |s, k, seed| {
        run_iso_time(s, &GpuArch::v100(), k, budget, seed)
    });
    let mut t = Table::new(
        "fig10",
        "Fig. 10 — iso-time performance on V100, normalized to Garvey (higher is better)",
        &["Stencil", "csTuner", "Garvey", "OpenTuner", "Artemis"],
    );
    let mean_final = |stencil: &str, tuner: &str| -> f64 {
        let rs: Vec<&RunResult> =
            runs.iter().filter(|r| r.stencil == stencil && r.tuner == tuner).collect();
        rs.iter().map(|r| r.best_ms).sum::<f64>() / rs.len() as f64
    };
    let mut speedup_over = [0.0f64; 3]; // Garvey, OpenTuner, Artemis
    for spec in &specs {
        let g = mean_final(spec.name, "Garvey");
        let cs = mean_final(spec.name, "csTuner");
        let ot = mean_final(spec.name, "OpenTuner");
        let ar = mean_final(spec.name, "Artemis");
        speedup_over[0] += g / cs;
        speedup_over[1] += ot / cs;
        speedup_over[2] += ar / cs;
        t.push(vec![
            spec.name.to_string(),
            f3(g / cs),
            "1.000".to_string(),
            f3(g / ot),
            f3(g / ar),
        ]);
    }
    let n = specs.len() as f64;
    println!(
        "csTuner average speedup: {}× over Garvey (paper 1.7×), {}× over OpenTuner (paper 1.2×), {}× over Artemis (paper 1.3×)\n",
        f3(speedup_over[0] / n),
        f3(speedup_over[1] / n),
        f3(speedup_over[2] / n)
    );
    emit(t, &runs);
}

fn fig11(scale: &Scale) {
    let specs = all_specs();
    let ratios: Vec<f64> = (1..=10).map(|k| k as f64 * 0.05).collect();
    let budget = scale.budget_s;
    let seeds = scale.ratio_seeds;
    let mut jobs = Vec::new();
    for spec in &specs {
        for &r in &ratios {
            for seed in 0..seeds {
                jobs.push((spec.clone(), r, seed));
            }
        }
    }
    use rayon::prelude::*;
    let runs: Vec<(String, f64, RunResult)> = jobs
        .par_iter()
        .map(|(spec, r, seed)| {
            (
                spec.name.to_string(),
                *r,
                run_cstuner_with_ratio(spec, &GpuArch::a100(), *r, budget, *seed),
            )
        })
        .collect();
    let mut t = Table::new(
        "fig11",
        "Fig. 11 — csTuner iso-time best (ms) vs. sampling ratio",
        &std::iter::once("Stencil".to_string())
            .chain(ratios.iter().map(|r| format!("{:.0}%", r * 100.0)))
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    for spec in &specs {
        let mut row = vec![spec.name.to_string()];
        for &r in &ratios {
            let vals: Vec<f64> = runs
                .iter()
                .filter(|(n, rr, _)| n == spec.name && (*rr - r).abs() < 1e-9)
                .map(|(_, _, run)| run.best_ms)
                .collect();
            row.push(f3(vals.iter().sum::<f64>() / vals.len() as f64));
        }
        t.push(row);
    }
    let raw: Vec<(String, f64, f64)> =
        runs.iter().map(|(n, r, run)| (n.clone(), *r, run.best_ms)).collect();
    emit(t, &raw);
}

fn fig12(scale: &Scale) {
    let specs = all_specs();
    let mut t = Table::new(
        "fig12",
        "Fig. 12 — pre-processing breakdown normalized to the search time",
        &["Stencil", "grouping", "sampling", "codegen", "total preproc"],
    );
    let mut raw = Vec::new();
    let mut avg_total = 0.0;
    for spec in &specs {
        let mut eval = SimEvaluator::with_budget(spec.clone(), GpuArch::a100(), 0, scale.budget_s);
        let mut tuner = CsTuner::new(CsTunerConfig::default());
        let out = tuner.tune(&mut eval, 0).expect("tuning run failed");
        let search = out.search_s.max(1e-9);
        let g = out.preproc.grouping_s / search;
        let s = out.preproc.sampling_s / search;
        let c = out.preproc.codegen_s / search;
        avg_total += g + s + c;
        t.push(vec![spec.name.to_string(), pct(g), pct(s), pct(c), pct(g + s + c)]);
        raw.push((spec.name, [g, s, c]));
    }
    println!(
        "Average pre-processing share: {} of search time (paper: 0.76%)\n",
        pct(avg_total / specs.len() as f64)
    );
    emit(t, &raw);
}

/// One ablation variant: label plus a factory for its tuner config.
type VariantFn = (&'static str, Box<dyn Fn() -> CsTunerConfig + Sync>);

fn ablation(scale: &Scale) {
    let specs = all_specs();
    let budget = scale.budget_s;
    let seeds = scale.ratio_seeds;
    let variants: Vec<VariantFn> = vec![
        ("full", Box::new(CsTunerConfig::default)),
        ("no-grouping", Box::new(|| CsTunerConfig { flat_grouping: true, ..Default::default() })),
        (
            "random-sampling",
            Box::new(|| CsTunerConfig {
                sampling: SamplingConfig { random_mode: Some(7), ..Default::default() },
                ..Default::default()
            }),
        ),
        (
            "no-approximation",
            Box::new(|| CsTunerConfig { cv_threshold: 0.0, ..Default::default() }),
        ),
        (
            "no-migration",
            Box::new(|| {
                let mut c = CsTunerConfig::default();
                c.ga.migration_interval = u32::MAX;
                c
            }),
        ),
    ];
    use rayon::prelude::*;
    let mut jobs = Vec::new();
    for spec in &specs {
        for (vi, _) in variants.iter().enumerate() {
            for seed in 0..seeds {
                jobs.push((spec.clone(), vi, seed));
            }
        }
    }
    let runs: Vec<(String, usize, f64)> = jobs
        .par_iter()
        .map(|(spec, vi, seed)| {
            let mut eval = SimEvaluator::with_budget(spec.clone(), GpuArch::a100(), *seed, budget);
            let mut tuner = CsTuner::new(variants[*vi].1());
            let out = tuner.tune(&mut eval, *seed).expect("tuning run failed");
            (spec.name.to_string(), *vi, out.best_time_ms)
        })
        .collect();
    let mut t = Table::new(
        "ablation",
        "Ablation — csTuner variants, iso-time best (ms)",
        &std::iter::once("Stencil").chain(variants.iter().map(|(n, _)| *n)).collect::<Vec<_>>(),
    );
    for spec in &specs {
        let mut row = vec![spec.name.to_string()];
        for (vi, _) in variants.iter().enumerate() {
            let vals: Vec<f64> = runs
                .iter()
                .filter(|(n, v, _)| n == spec.name && *v == vi)
                .map(|(_, _, b)| *b)
                .collect();
            row.push(f3(vals.iter().sum::<f64>() / vals.len() as f64));
        }
        t.push(row);
    }
    emit(t, &runs);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut scale = if quick { Scale::quick() } else { Scale::full() };
    if let Some(pos) = args.iter().position(|a| a == "--seeds") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            scale.seeds = n;
        }
    }
    let ids: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--seeds"))
        .map(|(_, s)| s.as_str())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        vec![
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11",
            "fig12", "ablation",
        ]
    } else {
        ids
    };
    for id in ids {
        eprintln!("== running {id} ==");
        let t0 = std::time::Instant::now();
        match id {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "fig2" => fig2(&scale),
            "fig3" => fig3(&scale),
            "fig4" => fig4(&scale),
            "fig8" => fig8(&scale),
            "fig9" => fig9(&scale),
            "fig10" => fig10(&scale),
            "fig11" => fig11(&scale),
            "fig12" => fig12(&scale),
            "ablation" => ablation(&scale),
            other => {
                eprintln!("unknown experiment `{other}`; see --help text in the module docs");
                std::process::exit(2);
            }
        }
        eprintln!("== {id} done in {:.1}s ==\n", t0.elapsed().as_secs_f64());
    }
}
