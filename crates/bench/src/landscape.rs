//! §III motivation studies: properties of the performance landscape.
//!
//! The paper samples >20,000 parameter settings per stencil to establish
//! three observations: high-performance settings are rare (Fig. 2),
//! parameters interact pairwise (Fig. 3), and the top-n settings are
//! nearly as good as the optimum (Fig. 4). These utilities regenerate the
//! same statistics from the simulated landscape.

use cst_gpu_sim::{GpuArch, GpuSim, ValidSpace};
use cst_space::{OptSpace, ParamId, Setting};
use cst_stencil::StencilSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A sampled landscape: settings with their modeled times, plus the sample
/// optimum.
#[derive(Debug, Clone)]
pub struct Landscape {
    /// Stencil name.
    pub stencil: &'static str,
    /// Sampled (setting, time) pairs, unsorted.
    pub samples: Vec<(Setting, f64)>,
    /// Fastest sampled time.
    pub best_ms: f64,
    /// The fastest sampled setting.
    pub best_setting: Setting,
}

/// Sample `n` distinct valid settings of a stencil and model their times.
/// Parallelized over chunks; deterministic given `seed`.
pub fn sample_landscape(spec: &StencilSpec, arch: &GpuArch, n: usize, seed: u64) -> Landscape {
    let chunks: usize = 16;
    let per = n.div_ceil(chunks);
    let all: Vec<(Setting, f64)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let space = OptSpace::for_stencil(spec);
            let sim = GpuSim::new(spec.clone(), arch.clone());
            let vs = ValidSpace::new(space, sim);
            let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
            let mut out = Vec::with_capacity(per);
            let mut seen = std::collections::HashSet::with_capacity(per);
            while out.len() < per {
                let s = vs.random_valid(&mut rng);
                if !seen.insert(s) {
                    continue;
                }
                out.push((s, vs.sim().kernel_time_ms(&s)));
            }
            out
        })
        .collect();
    let mut samples = all;
    samples.truncate(n);
    let (best_setting, best_ms) = samples
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(s, t)| (*s, *t))
        .expect("non-empty landscape");
    Landscape { stencil: spec.name, samples, best_ms, best_setting }
}

/// Fig. 2: fraction of settings per speedup-over-optimum bin
/// `[0, 0.2), [0.2, 0.4), [0.4, 0.6), [0.6, 0.8), [0.8, 1.0]`,
/// where speedup = optimum_time / setting_time (≤ 1).
pub fn speedup_distribution(l: &Landscape) -> [f64; 5] {
    let mut bins = [0usize; 5];
    for &(_, t) in &l.samples {
        let sp = if t.is_finite() { (l.best_ms / t).clamp(0.0, 1.0) } else { 0.0 };
        let b = ((sp * 5.0) as usize).min(4);
        bins[b] += 1;
    }
    let n = l.samples.len() as f64;
    bins.map(|c| c as f64 / n)
}

/// Fraction of settings achieving a speedup of at least `threshold` over
/// the optimum (e.g. 0.8 for "within 20% of optimal").
pub fn fraction_at_least(l: &Landscape, threshold: f64) -> f64 {
    let hits =
        l.samples.iter().filter(|(_, t)| t.is_finite() && l.best_ms / t >= threshold).count();
    hits as f64 / l.samples.len() as f64
}

/// Fig. 3: per ordered parameter pair `(a, b)`, the fraction of `a`'s
/// observed values whose conditional-best `b` value differs from the
/// optimum's `b` value; returns the distribution of those fractions over
/// all pairs, binned `[0,20) … [80,100]` percent.
pub fn pair_divergence_distribution(l: &Landscape) -> [f64; 5] {
    let pair_pcts = pair_divergences(l);
    let mut bins = [0usize; 5];
    for &p in &pair_pcts {
        let b = ((p * 5.0) as usize).min(4);
        bins[b] += 1;
    }
    let n = pair_pcts.len() as f64;
    bins.map(|c| c as f64 / n)
}

/// The raw per-pair divergence fractions behind Fig. 3.
pub fn pair_divergences(l: &Landscape) -> Vec<f64> {
    let best = &l.best_setting;
    let mut out = Vec::with_capacity(ParamId::ALL.len() * (ParamId::ALL.len() - 1));
    // Pre-index: for each parameter value, the best sample.
    for a in ParamId::ALL {
        // value of a -> (best time, b-values of that record)
        let mut cond: std::collections::HashMap<u32, (f64, Setting)> =
            std::collections::HashMap::new();
        for &(s, t) in &l.samples {
            if !t.is_finite() {
                continue;
            }
            let e = cond.entry(s.get(a)).or_insert((t, s));
            if t < e.0 {
                *e = (t, s);
            }
        }
        for b in ParamId::ALL {
            if a == b {
                continue;
            }
            let total = cond.len();
            if total == 0 {
                out.push(0.0);
                continue;
            }
            let diff = cond.values().filter(|(_, s)| s.get(b) != best.get(b)).count();
            out.push(diff as f64 / total as f64);
        }
    }
    out
}

/// Fig. 4: speedup of the n-th best setting over the optimum.
pub fn top_n_speedup(l: &Landscape, n: usize) -> f64 {
    let mut times: Vec<f64> = l.samples.iter().map(|&(_, t)| t).filter(|t| t.is_finite()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = n.min(times.len()).saturating_sub(1);
    l.best_ms / times[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_stencil::suite;

    fn small_landscape(name: &str) -> Landscape {
        sample_landscape(&suite::spec_by_name(name).unwrap(), &GpuArch::a100(), 2000, 7)
    }

    #[test]
    fn landscape_has_requested_size_and_valid_best() {
        let l = small_landscape("j3d7pt");
        assert_eq!(l.samples.len(), 2000);
        assert!(l.best_ms.is_finite());
        assert!(l.samples.iter().all(|(_, t)| *t >= l.best_ms));
    }

    #[test]
    fn speedup_bins_sum_to_one() {
        let l = small_landscape("cheby");
        let bins = speedup_distribution(&l);
        assert!((bins.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn landscape_is_biased_toward_poor_settings() {
        // The §III-A observation: few settings near-optimal, many ≥ 5×
        // slower (speedup < 0.2).
        let l = small_landscape("rhs4center");
        let near_optimal = fraction_at_least(&l, 0.8);
        let very_poor = speedup_distribution(&l)[0];
        assert!(near_optimal < 0.25, "near-optimal fraction {near_optimal}");
        assert!(very_poor > 0.05, "very-poor fraction {very_poor}");
        assert!(very_poor > near_optimal, "distribution must lean poor");
    }

    #[test]
    fn pair_divergence_nonzero() {
        // §III-B: a meaningful share of pairs disagrees with the optimum.
        let l = small_landscape("j3d27pt");
        let pcts = pair_divergences(&l);
        let avg = pcts.iter().sum::<f64>() / pcts.len() as f64;
        assert!(avg > 0.05, "pairs look independent: avg divergence {avg}");
        let bins = pair_divergence_distribution(&l);
        assert!((bins.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_n_speedups_are_high_and_decreasing() {
        // §III-C: top-10/50/100 settings are close to the optimum.
        let l = small_landscape("helmholtz");
        let s10 = top_n_speedup(&l, 10);
        let s50 = top_n_speedup(&l, 50);
        let s100 = top_n_speedup(&l, 100);
        assert!(s10 >= s50 && s50 >= s100);
        assert!(s10 > 0.7, "top-10 speedup {s10}");
        assert!(s100 > 0.4, "top-100 speedup {s100}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_landscape("j3d7pt");
        let b = small_landscape("j3d7pt");
        assert_eq!(a.best_ms, b.best_ms);
        assert_eq!(a.samples.len(), b.samples.len());
    }
}
