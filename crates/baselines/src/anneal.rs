//! Simulated annealing over the canonical setting space.
//!
//! A single-chain Metropolis walk: perturb one parameter of the
//! incumbent by one step on its value list, accept improvements always
//! and regressions with probability `exp(-Δ/T)` under a geometric
//! cooling schedule. The first tuner written *for* the ask/tell kernel
//! rather than ported to it — all annealer randomness lives on its own
//! seeded rng, candidate validity is checked before asking, and the
//! kernel's stall backstop guards the walk if the neighborhood ever
//! closes over already-measured settings.

use cst_space::{ParamId, Setting, SettingSet, N_PARAMS};
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulated-annealing tuner.
#[derive(Debug, Clone)]
pub struct AnnealTuner {
    /// Evaluations per recorded iteration (matched to the GA population).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Initial temperature as a fraction of the first measured time.
    pub t0_frac: f64,
    /// Geometric cooling factor per accepted-or-rejected step.
    pub alpha: f64,
    /// Warm-start seeds walked before the baseline start.
    pub warm: Vec<Setting>,
}

impl Default for AnnealTuner {
    fn default() -> Self {
        AnnealTuner {
            pop: 32,
            max_iterations: u32::MAX,
            t0_frac: 0.3,
            alpha: 0.97,
            warm: Vec::new(),
        }
    }
}

impl Tuner for AnnealTuner {
    fn name(&self) -> &'static str {
        "Anneal"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn warm_start(&mut self, seeds: Vec<Setting>) {
        self.warm = seeds;
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = SaOptimizer::new(self.t0_frac, self.alpha);
        let cfg = KernelConfig {
            pop: self.pop,
            max_iterations: self.max_iterations,
            // The walk proposes unseen settings (with a random-restart
            // fallback), so this backstop fires only if the reachable
            // space is genuinely exhausted.
            stall_limit: 10_000,
            warm: self.warm.clone(),
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Simulated annealing as an ask/tell [`Optimizer`]: batch-of-one asks,
/// Metropolis accept/reject in `tell`.
#[derive(Debug)]
pub struct SaOptimizer {
    t0_frac: f64,
    alpha: f64,
    rng: StdRng,
    /// Incumbent setting and its measured time (None before the first
    /// observation).
    cur: Option<(Setting, f64)>,
    /// Current temperature (set from the first measurement).
    temp: f64,
    /// Settings already proposed this run.
    seen: SettingSet,
    /// Warm-start seeds walked (in rank order) before the baseline.
    warm: std::collections::VecDeque<Setting>,
}

/// Neighbor-proposal attempts before falling back to a random restart.
const NEIGHBOR_ATTEMPTS: usize = 8;

impl SaOptimizer {
    /// New annealer; the rng is seeded in `init`.
    pub fn new(t0_frac: f64, alpha: f64) -> Self {
        SaOptimizer {
            t0_frac,
            alpha,
            rng: StdRng::seed_from_u64(0),
            cur: None,
            temp: 0.0,
            seen: SettingSet::default(),
            warm: std::collections::VecDeque::new(),
        }
    }

    /// One-parameter, one-step perturbation of the incumbent; falls back
    /// to a fresh valid draw when the local neighborhood is exhausted.
    fn propose(&mut self, ctx: &mut SearchCtx<'_>, cur: Setting) -> Setting {
        for _ in 0..NEIGHBOR_ATTEMPTS {
            let p = ParamId::ALL[self.rng.gen_range(0..N_PARAMS)];
            let vals = ctx.space().values(p);
            if vals.len() < 2 {
                continue;
            }
            // canonicalize may have parked an inactive parameter on a
            // value outside its list — re-enter the lattice at random.
            let ni = match ctx.space().value_index(p, cur.get(p)) {
                Some(0) => 1,
                Some(i) if i == vals.len() - 1 => i - 1,
                Some(i) => {
                    if self.rng.gen::<bool>() {
                        i + 1
                    } else {
                        i - 1
                    }
                }
                None => self.rng.gen_range(0..vals.len()),
            };
            let mut s = cur;
            s.set(p, vals[ni]);
            ctx.space().canonicalize(&mut s);
            if ctx.is_valid(&s) && !self.seen.contains(&s) {
                return s;
            }
        }
        // Random restart: escape a closed neighborhood (and keep the
        // kernel's fresh-evaluation clock moving).
        for _ in 0..NEIGHBOR_ATTEMPTS {
            let s = ctx.random_valid();
            if !self.seen.contains(&s) {
                return s;
            }
        }
        ctx.random_valid()
    }
}

impl Optimizer for SaOptimizer {
    fn name(&self) -> &'static str {
        "Anneal"
    }

    fn init(&mut self, _ctx: &mut SearchCtx<'_>, seed: u64, _tel: &Telemetry) {
        // `warm` survives init: the kernel offers seeds first, then inits.
        self.rng = StdRng::seed_from_u64(seed ^ 0x0a11_ea1e);
        self.cur = None;
        self.temp = 0.0;
        self.seen.clear();
    }

    fn warm_start(&mut self, seeds: &[Setting]) {
        self.warm = seeds.iter().copied().collect();
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        // Drain warm-start seeds first (rank order): the walk then starts
        // its Metropolis chain from the best measurement among them.
        while let Some(mut s) = self.warm.pop_front() {
            ctx.space().canonicalize(&mut s);
            if ctx.is_valid(&s) && !self.seen.contains(&s) {
                self.seen.insert(s);
                return vec![s];
            }
        }
        let s = match self.cur {
            None => {
                // Start from the canonical baseline when it is valid —
                // the tuning story every practitioner begins with — else
                // from a seeded valid draw.
                let mut b = Setting::baseline();
                ctx.space().canonicalize(&mut b);
                if ctx.is_valid(&b) {
                    b
                } else {
                    ctx.random_valid()
                }
            }
            Some((cur, _)) => self.propose(ctx, cur),
        };
        self.seen.insert(s);
        vec![s]
    }

    fn tell(&mut self, obs: &[Observation]) {
        for o in obs {
            let t = match o.time_ms {
                Some(t) => t,
                None => continue, // skipped past expiry: the run is ending
            };
            match self.cur {
                None => {
                    self.cur = Some((o.setting, t));
                    self.temp = (t * self.t0_frac).max(f64::MIN_POSITIVE);
                }
                Some((_, cur_ms)) => {
                    // Metropolis rule; non-finite measurements (faulted
                    // evaluations) are always rejected. The uniform draw
                    // happens on every comparison so the rng stream does
                    // not depend on the outcome.
                    let u = self.rng.gen::<f64>();
                    let accept =
                        t < cur_ms || (t.is_finite() && u < (-(t - cur_ms) / self.temp).exp());
                    if accept {
                        self.cur = Some((o.setting, t));
                    }
                    self.temp = (self.temp * self.alpha).max(f64::MIN_POSITIVE);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn anneal_finds_finite_best_and_improves() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 7);
        let mut t = AnnealTuner { pop: 8, max_iterations: 10, ..Default::default() };
        let out = t.tune(&mut e, 7).unwrap();
        assert_eq!(out.tuner, "Anneal");
        assert!(out.best_time_ms.is_finite());
        let first = out.curve.first().unwrap().best_ms;
        let last = out.curve.last().unwrap().best_ms;
        assert!(last <= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("cheby").unwrap(), GpuArch::v100(), 5);
            AnnealTuner { pop: 8, max_iterations: 6, ..Default::default() }.tune(&mut e, 5).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_time_ms.to_bits(), b.best_time_ms.to_bits());
        assert_eq!(a.best_setting, b.best_setting);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn iso_time_budget_stops_search() {
        let mut e = SimEvaluator::with_budget(
            suite::spec_by_name("j3d7pt").unwrap(),
            GpuArch::a100(),
            4,
            15.0,
        );
        let out = AnnealTuner::default().tune(&mut e, 4).unwrap();
        assert!(out.search_s >= 15.0);
        assert!(out.search_s < 25.0);
    }
}
