//! Forest-surrogate search: a random forest trained online on told
//! records pre-ranks candidate settings.
//!
//! Filipovič et al. ("Using hardware performance counters to speed up
//! autotuning convergence") show cheap learned models cutting the
//! evaluations a searcher needs; Garvey & Abdelrahman use the same
//! forest shape offline for memory-type prediction. This tuner closes
//! the loop *online*: every measured (setting, time) pair becomes
//! training data, the forest learns to recognize the fast 30% by
//! setting features, and each ask over-draws a pool of valid candidates
//! and keeps only the forest's top picks. Before enough records exist
//! it degrades gracefully to random search.

use cst_ml::{RandomForest, RandomForestConfig};
use cst_space::{Setting, N_PARAMS};
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The forest-surrogate tuner.
#[derive(Debug, Clone)]
pub struct ForestTuner {
    /// Evaluations per recorded iteration (and per ask, post-ranking).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Candidate pool over-draw factor per ask.
    pub pool_factor: usize,
    /// Told records required before the forest starts ranking.
    pub min_train: usize,
}

impl Default for ForestTuner {
    fn default() -> Self {
        ForestTuner { pop: 32, max_iterations: u32::MAX, pool_factor: 4, min_train: 32 }
    }
}

impl Tuner for ForestTuner {
    fn name(&self) -> &'static str {
        "Forest"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = ForestOptimizer::new(self.pop, self.pool_factor, self.min_train);
        let cfg = KernelConfig {
            pop: self.pop,
            max_iterations: self.max_iterations,
            // Candidates come off the evaluator's uniform valid stream,
            // so fresh settings keep arriving; the backstop only fires on
            // a space small enough to memoize completely.
            stall_limit: 10_000,
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Most recent told records kept as forest training data.
const TRAIN_WINDOW: usize = 512;

/// The surrogate as an ask/tell [`Optimizer`]: over-draw, rank by
/// predicted P(fast), keep the top `pop`.
#[derive(Debug)]
pub struct ForestOptimizer {
    pop: usize,
    pool_factor: usize,
    min_train: usize,
    rng: StdRng,
    /// (features, measured ms) for every finite told evaluation.
    records: Vec<([f64; N_PARAMS], f64)>,
}

impl ForestOptimizer {
    /// New surrogate optimizer; the rng is seeded in `init`.
    pub fn new(pop: usize, pool_factor: usize, min_train: usize) -> Self {
        assert!(pop > 0 && pool_factor > 0);
        ForestOptimizer {
            pop,
            pool_factor,
            min_train: min_train.max(2),
            rng: StdRng::seed_from_u64(0),
            records: Vec::new(),
        }
    }

    /// Fit a fast/slow classifier on the record window (Garvey's q30
    /// labeling) and return P(fast) per pool candidate.
    fn rank_scores(&mut self, pool: &[Setting]) -> Vec<f64> {
        let mut times: Vec<f64> = self.records.iter().map(|r| r.1).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q30 = times[(times.len() as f64 * 0.3) as usize];
        let xs: Vec<Vec<f64>> = self.records.iter().map(|r| r.0.to_vec()).collect();
        let ys: Vec<usize> = self.records.iter().map(|r| usize::from(r.1 <= q30)).collect();
        let forest = RandomForest::fit(&xs, &ys, 2, &RandomForestConfig::default(), &mut self.rng);
        pool.iter().map(|s| forest.predict_proba(&s.features())[1]).collect()
    }
}

impl Optimizer for ForestOptimizer {
    fn name(&self) -> &'static str {
        "Forest"
    }

    fn init(&mut self, _ctx: &mut SearchCtx<'_>, seed: u64, _tel: &Telemetry) {
        self.rng = StdRng::seed_from_u64(seed ^ 0x0f0e_e57a);
        self.records.clear();
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        let pool: Vec<Setting> =
            (0..self.pop * self.pool_factor).map(|_| ctx.random_valid()).collect();
        if self.records.len() < self.min_train {
            // Cold start: plain random search until the forest has data.
            return pool.into_iter().take(self.pop).collect();
        }
        let scores = self.rank_scores(&pool);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        // Stable by construction: descending score, pool index breaks
        // ties, so ranking is bit-deterministic.
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        order.into_iter().take(self.pop).map(|i| pool[i]).collect()
    }

    fn tell(&mut self, obs: &[Observation]) {
        for o in obs {
            if let Some(t) = o.time_ms {
                if t.is_finite() {
                    self.records.push((o.setting.features(), t));
                }
            }
        }
        if self.records.len() > TRAIN_WINDOW {
            let excess = self.records.len() - TRAIN_WINDOW;
            self.records.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn forest_finds_finite_best() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 6);
        let mut t = ForestTuner { pop: 8, max_iterations: 8, ..Default::default() };
        let out = t.tune(&mut e, 6).unwrap();
        assert_eq!(out.tuner, "Forest");
        assert!(out.best_time_ms.is_finite());
        assert_eq!(out.curve.len(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("helmholtz").unwrap(), GpuArch::a100(), 8);
            ForestTuner { pop: 8, max_iterations: 6, min_train: 8, ..Default::default() }
                .tune(&mut e, 8)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_time_ms.to_bits(), b.best_time_ms.to_bits());
        assert_eq!(a.best_setting, b.best_setting);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.search_s.to_bits(), b.search_s.to_bits());
    }

    #[test]
    fn surrogate_ranking_kicks_in_after_min_train() {
        // With min_train below one iteration's evals, the second ask must
        // rank — and the run must still complete cleanly.
        let mut e = SimEvaluator::with_budget(
            suite::spec_by_name("cheby").unwrap(),
            GpuArch::a100(),
            9,
            40.0,
        );
        let out = ForestTuner { pop: 8, min_train: 4, ..Default::default() }.tune(&mut e, 9);
        assert!(out.unwrap().best_time_ms.is_finite());
    }
}
