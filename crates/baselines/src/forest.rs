//! Forest-surrogate search: a random forest trained online on told
//! records pre-ranks candidate settings.
//!
//! Filipovič et al. ("Using hardware performance counters to speed up
//! autotuning convergence") show cheap learned models cutting the
//! evaluations a searcher needs; Garvey & Abdelrahman use the same
//! forest shape offline for memory-type prediction. This tuner closes
//! the loop *online*: every measured (setting, time) pair becomes
//! training data, the forest learns to recognize the fast 30% by
//! setting features, and each ask over-draws a pool of valid candidates
//! and keeps only the forest's top picks. Before enough records exist
//! it degrades gracefully to random search.

use cst_ml::Surrogate;
use cst_space::{Setting, N_PARAMS};
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The forest-surrogate tuner.
#[derive(Debug, Clone)]
pub struct ForestTuner {
    /// Evaluations per recorded iteration (and per ask, post-ranking).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Candidate pool over-draw factor per ask.
    pub pool_factor: usize,
    /// Told records required before the forest starts ranking.
    pub min_train: usize,
    /// Warm-start seeds served as the first ask.
    pub warm: Vec<Setting>,
    /// Pre-trained surrogate (from the transfer KB) that ranks the pool
    /// before enough online records exist. `None` = cold start degrades
    /// to random search exactly as before.
    pub pretrained: Option<Surrogate>,
}

impl Default for ForestTuner {
    fn default() -> Self {
        ForestTuner {
            pop: 32,
            max_iterations: u32::MAX,
            pool_factor: 4,
            min_train: 32,
            warm: Vec::new(),
            pretrained: None,
        }
    }
}

impl Tuner for ForestTuner {
    fn name(&self) -> &'static str {
        "Forest"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn warm_start(&mut self, seeds: Vec<Setting>) {
        self.warm = seeds;
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = ForestOptimizer::new(self.pop, self.pool_factor, self.min_train);
        if let Some(pre) = self.pretrained.clone() {
            opt = opt.with_pretrained(pre);
        }
        let cfg = KernelConfig {
            pop: self.pop,
            max_iterations: self.max_iterations,
            // Candidates come off the evaluator's uniform valid stream,
            // so fresh settings keep arriving; the backstop only fires on
            // a space small enough to memoize completely.
            stall_limit: 10_000,
            warm: self.warm.clone(),
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Most recent told records kept as forest training data.
const TRAIN_WINDOW: usize = 512;

/// The surrogate as an ask/tell [`Optimizer`]: over-draw, rank by
/// predicted P(fast), keep the top `pop`.
#[derive(Debug)]
pub struct ForestOptimizer {
    pop: usize,
    pool_factor: usize,
    min_train: usize,
    rng: StdRng,
    /// (features, measured ms) for every finite told evaluation.
    records: Vec<([f64; N_PARAMS], f64)>,
    /// Warm-start seeds served as the first ask.
    warm: Vec<Setting>,
    /// KB-trained surrogate used below `min_train` instead of random.
    pretrained: Option<Surrogate>,
}

impl ForestOptimizer {
    /// New surrogate optimizer; the rng is seeded in `init`.
    pub fn new(pop: usize, pool_factor: usize, min_train: usize) -> Self {
        assert!(pop > 0 && pool_factor > 0);
        ForestOptimizer {
            pop,
            pool_factor,
            min_train: min_train.max(2),
            rng: StdRng::seed_from_u64(0),
            records: Vec::new(),
            warm: Vec::new(),
            pretrained: None,
        }
    }

    /// Attach a pre-trained surrogate (transfer KB path): it ranks the
    /// candidate pool during the cold-start window where the online path
    /// would fall back to random search.
    pub fn with_pretrained(mut self, surrogate: Surrogate) -> Self {
        self.pretrained = Some(surrogate);
        self
    }

    /// Fit a fast/slow surrogate on the record window (Garvey's q30
    /// labeling, shared via [`cst_ml::Surrogate`]) and return P(fast)
    /// per pool candidate.
    fn rank_scores(&mut self, pool: &[Setting]) -> Vec<f64> {
        let times: Vec<f64> = self.records.iter().map(|r| r.1).collect();
        let xs: Vec<Vec<f64>> = self.records.iter().map(|r| r.0.to_vec()).collect();
        let surrogate = Surrogate::fit(&xs, &times, &mut self.rng).expect("min_train >= 2 records");
        pool.iter().map(|s| surrogate.score(&s.features())).collect()
    }
}

impl Optimizer for ForestOptimizer {
    fn name(&self) -> &'static str {
        "Forest"
    }

    fn init(&mut self, _ctx: &mut SearchCtx<'_>, seed: u64, _tel: &Telemetry) {
        // `warm` and `pretrained` survive init: the kernel offers seeds
        // first, then inits.
        self.rng = StdRng::seed_from_u64(seed ^ 0x0f0e_e57a);
        self.records.clear();
    }

    fn warm_start(&mut self, seeds: &[Setting]) {
        self.warm = seeds.to_vec();
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        // Warm-start seeds form the first asks (rank order, validity
        // re-checked against this evaluator), before any pool draw.
        if !self.warm.is_empty() {
            let warm = std::mem::take(&mut self.warm);
            let firsts: Vec<Setting> = warm
                .into_iter()
                .map(|mut s| {
                    ctx.space().canonicalize(&mut s);
                    s
                })
                .filter(|s| ctx.is_valid(s))
                .take(self.pop)
                .collect();
            if !firsts.is_empty() {
                return firsts;
            }
        }
        let pool: Vec<Setting> =
            (0..self.pop * self.pool_factor).map(|_| ctx.random_valid()).collect();
        if self.records.len() < self.min_train {
            if let Some(pre) = &self.pretrained {
                // Transfer path: the KB surrogate ranks the pool during
                // the window the online path would explore at random.
                let scores: Vec<f64> = pool.iter().map(|s| pre.score(&s.features())).collect();
                let mut order: Vec<usize> = (0..pool.len()).collect();
                order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
                return order.into_iter().take(self.pop).map(|i| pool[i]).collect();
            }
            // Cold start: plain random search until the forest has data.
            return pool.into_iter().take(self.pop).collect();
        }
        let scores = self.rank_scores(&pool);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        // Stable by construction: descending score, pool index breaks
        // ties, so ranking is bit-deterministic.
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        order.into_iter().take(self.pop).map(|i| pool[i]).collect()
    }

    fn tell(&mut self, obs: &[Observation]) {
        for o in obs {
            if let Some(t) = o.time_ms {
                if t.is_finite() {
                    self.records.push((o.setting.features(), t));
                }
            }
        }
        if self.records.len() > TRAIN_WINDOW {
            let excess = self.records.len() - TRAIN_WINDOW;
            self.records.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn forest_finds_finite_best() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 6);
        let mut t = ForestTuner { pop: 8, max_iterations: 8, ..Default::default() };
        let out = t.tune(&mut e, 6).unwrap();
        assert_eq!(out.tuner, "Forest");
        assert!(out.best_time_ms.is_finite());
        assert_eq!(out.curve.len(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("helmholtz").unwrap(), GpuArch::a100(), 8);
            ForestTuner { pop: 8, max_iterations: 6, min_train: 8, ..Default::default() }
                .tune(&mut e, 8)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_time_ms.to_bits(), b.best_time_ms.to_bits());
        assert_eq!(a.best_setting, b.best_setting);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.search_s.to_bits(), b.search_s.to_bits());
    }

    #[test]
    fn surrogate_ranking_kicks_in_after_min_train() {
        // With min_train below one iteration's evals, the second ask must
        // rank — and the run must still complete cleanly.
        let mut e = SimEvaluator::with_budget(
            suite::spec_by_name("cheby").unwrap(),
            GpuArch::a100(),
            9,
            40.0,
        );
        let out = ForestTuner { pop: 8, min_train: 4, ..Default::default() }.tune(&mut e, 9);
        assert!(out.unwrap().best_time_ms.is_finite());
    }
}
