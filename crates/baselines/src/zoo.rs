//! The tuner zoo: one registry for every tuner the workspace ships.
//!
//! The CLI (`cstuner tune --tuner`, `cstuner version`, `cstuner list`),
//! the serve daemon's request validation, the shootout example, and the
//! testkit property suites all resolve tuners here, so adding a tuner
//! is one [`TunerEntry`] — the flag name, the journal display name, the
//! builder, and (for kernel-based strategies) the raw [`Optimizer`]
//! constructor the ask/tell property suite probes directly.

use crate::{
    AnnealTuner, ArtemisTuner, ForestTuner, GarveyTuner, GridSearch, OpenTunerGa, RandomSearch,
};
use cstuner_core::{CsTuner, CsTunerConfig, Optimizer, Tuner};

/// One registered tuner.
pub struct TunerEntry {
    /// Canonical flag name (`--tuner` value, serve request `tuner` field).
    pub flag: &'static str,
    /// Display name used as [`cstuner_core::TuningOutcome::tuner`].
    pub display: &'static str,
    /// One-line description for `cstuner list` / `version`.
    pub summary: &'static str,
    build: fn(bool) -> Box<dyn Tuner>,
    optimizer: Option<fn() -> Box<dyn Optimizer>>,
}

impl TunerEntry {
    /// Build the tuner; `quick` selects the CLI's reduced-scale csTuner
    /// configuration (other tuners are already budget-bound).
    pub fn build(&self, quick: bool) -> Box<dyn Tuner> {
        (self.build)(quick)
    }

    /// The raw ask/tell optimizer behind this tuner, for strategies that
    /// run through the kernel (`None` for the pipeline-style tuners:
    /// csTuner, Garvey, Artemis). The testkit property suite uses this
    /// to probe `ask`/`tell` directly.
    pub fn optimizer(&self) -> Option<Box<dyn Optimizer>> {
        self.optimizer.map(|f| f())
    }
}

fn build_cstuner(quick: bool) -> Box<dyn Tuner> {
    let cfg = if quick {
        CsTunerConfig {
            dataset_size: 48,
            max_iterations: 15,
            codegen_cap: 16,
            ..Default::default()
        }
    } else {
        CsTunerConfig::default()
    };
    Box::new(CsTuner::new(cfg))
}

fn build_garvey(_quick: bool) -> Box<dyn Tuner> {
    Box::new(GarveyTuner::default())
}

fn build_opentuner(_quick: bool) -> Box<dyn Tuner> {
    Box::new(OpenTunerGa::default())
}

fn build_artemis(_quick: bool) -> Box<dyn Tuner> {
    Box::new(ArtemisTuner::default())
}

fn build_random(_quick: bool) -> Box<dyn Tuner> {
    Box::new(RandomSearch::default())
}

fn build_grid(_quick: bool) -> Box<dyn Tuner> {
    Box::new(GridSearch::default())
}

fn build_anneal(_quick: bool) -> Box<dyn Tuner> {
    Box::new(AnnealTuner::default())
}

fn build_forest(_quick: bool) -> Box<dyn Tuner> {
    Box::new(ForestTuner::default())
}

fn opt_opentuner() -> Box<dyn Optimizer> {
    Box::new(crate::opentuner::GaOptimizer::new(Default::default()))
}

fn opt_random() -> Box<dyn Optimizer> {
    Box::new(crate::random::RandomOptimizer::default())
}

fn opt_grid() -> Box<dyn Optimizer> {
    let g = GridSearch::default();
    Box::new(crate::grid::GridOptimizer::new(g.levels, g.pop))
}

fn opt_anneal() -> Box<dyn Optimizer> {
    let a = AnnealTuner::default();
    Box::new(crate::anneal::SaOptimizer::new(a.t0_frac, a.alpha))
}

fn opt_forest() -> Box<dyn Optimizer> {
    let f = ForestTuner::default();
    Box::new(crate::forest::ForestOptimizer::new(f.pop, f.pool_factor, f.min_train))
}

static TUNERS: [TunerEntry; 8] = [
    TunerEntry {
        flag: "cstuner",
        display: "csTuner",
        summary: "the paper's pipeline: grouping, PMNF sampling, approximating GA",
        build: build_cstuner,
        optimizer: None,
    },
    TunerEntry {
        flag: "garvey",
        display: "Garvey",
        summary: "forest memory-type prediction + per-dimension group search",
        build: build_garvey,
        optimizer: None,
    },
    TunerEntry {
        flag: "opentuner",
        display: "OpenTuner",
        summary: "global GA over the full space (via the ask/tell kernel)",
        build: build_opentuner,
        optimizer: Some(opt_opentuner),
    },
    TunerEntry {
        flag: "artemis",
        display: "Artemis",
        summary: "hierarchical expert tuning: high-impact first, then greedy",
        build: build_artemis,
        optimizer: None,
    },
    TunerEntry {
        flag: "random",
        display: "Random",
        summary: "uniform valid sampling, the floor every tuner must beat",
        build: build_random,
        optimizer: Some(opt_random),
    },
    TunerEntry {
        flag: "grid",
        display: "Grid",
        summary: "deterministic coarse lattice sweep, no rng at all",
        build: build_grid,
        optimizer: Some(opt_grid),
    },
    TunerEntry {
        flag: "anneal",
        display: "Anneal",
        summary: "single-chain simulated annealing with Metropolis accepts",
        build: build_anneal,
        optimizer: Some(opt_anneal),
    },
    TunerEntry {
        flag: "forest",
        display: "Forest",
        summary: "online random-forest surrogate pre-ranking candidates",
        build: build_forest,
        optimizer: Some(opt_forest),
    },
];

/// Every registered tuner, in canonical order (csTuner first, then the
/// paper baselines, then the kernel-native strategies).
pub fn tuners() -> &'static [TunerEntry] {
    &TUNERS
}

/// Look up a tuner by its canonical flag name.
pub fn find(flag: &str) -> Option<&'static TunerEntry> {
    TUNERS.iter().find(|t| t.flag == flag)
}

/// Build a tuner by flag name (the serve/CLI entry point).
pub fn build(flag: &str, quick: bool) -> Option<Box<dyn Tuner>> {
    find(flag).map(|t| t.build(quick))
}

/// The `a|b|c` flag list used in help and error messages.
pub fn flag_list() -> String {
    TUNERS.iter().map(|t| t.flag).collect::<Vec<_>>().join("|")
}

/// Classic Levenshtein distance, for `did you mean` hints.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// The registered flag nearest to `input` when it is a plausible typo
/// (edit distance ≤ 2), for `did you mean` hints.
pub fn did_you_mean(input: &str) -> Option<&'static str> {
    TUNERS
        .iter()
        .map(|t| (edit_distance(input, t.flag), t.flag))
        .filter(|(d, _)| *d <= 2)
        .min()
        .map(|(_, flag)| flag)
}

/// The full rejection message for an unrecognized tuner name, shared by
/// the CLI and the serve request validator so both transports reject
/// identically.
pub fn unknown_tuner_message(input: &str) -> String {
    match did_you_mean(input) {
        Some(near) => {
            format!("unknown tuner `{input}` ({}); did you mean `{near}`?", flag_list())
        }
        None => format!("unknown tuner `{input}` ({})", flag_list()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn flags_are_unique_and_lowercase_of_display() {
        for t in tuners() {
            assert_eq!(tuners().iter().filter(|o| o.flag == t.flag).count(), 1);
            // The shootout writes per-tuner journals named by the
            // lowercased display name; the registry keeps that equal to
            // the flag so files and `--tuner` values line up.
            assert_eq!(t.display.to_lowercase(), t.flag, "{}", t.flag);
        }
    }

    #[test]
    fn build_display_matches_entry() {
        for t in tuners() {
            assert_eq!(t.build(true).name(), t.display, "{}", t.flag);
        }
    }

    #[test]
    fn optimizer_names_match_entries() {
        for t in tuners() {
            if let Some(opt) = t.optimizer() {
                assert_eq!(opt.name(), t.display, "{}", t.flag);
            }
        }
    }

    #[test]
    fn every_tuner_completes_a_tiny_run() {
        for t in tuners() {
            let mut e = SimEvaluator::with_budget(
                suite::spec_by_name("j3d7pt").unwrap(),
                GpuArch::a100(),
                1,
                20.0,
            );
            let mut tuner = t.build(true);
            let out = tuner.tune(&mut e, 1).unwrap();
            assert!(out.best_time_ms.is_finite(), "{}", t.flag);
        }
    }

    #[test]
    fn did_you_mean_catches_typos() {
        assert_eq!(did_you_mean("anneel"), Some("anneal"));
        assert_eq!(did_you_mean("cstunr"), Some("cstuner"));
        assert_eq!(did_you_mean("zzzzzz"), None);
        assert!(unknown_tuner_message("anneel").contains("did you mean `anneal`?"));
        assert!(unknown_tuner_message("zzzzzz").contains("grid|anneal|forest"));
    }
}
