//! OpenTuner-style global genetic algorithm.
//!
//! OpenTuner (Ansel et al., PACT'14) is a general-purpose program
//! auto-tuner; following §V-A2 we adopt its (global) genetic algorithm
//! with options matched to csTuner's GA. The crucial differences from
//! csTuner: the genome spans the *full* Table I space (one gene per
//! parameter over its entire value list), there is no parameter grouping,
//! no model-guided sampling, and no approximation-based narrowing — so
//! convergence is slow and local optima are a real risk with a small
//! population (§V-B).

use crate::common::Recorder;
use cst_ga::{GaConfig, GaState, Genome};
use cst_space::{ParamId, Setting, N_PARAMS};
use cst_telemetry::Telemetry;
use cstuner_core::{Evaluator, TuneError, Tuner, TuningOutcome};

/// The OpenTuner-like baseline.
#[derive(Debug, Clone)]
pub struct OpenTunerGa {
    /// GA options (kept consistent with csTuner per §V-A2).
    pub ga: GaConfig,
    /// Iteration cap.
    pub max_iterations: u32,
}

impl Default for OpenTunerGa {
    fn default() -> Self {
        OpenTunerGa { ga: GaConfig::default(), max_iterations: u32::MAX }
    }
}

impl OpenTunerGa {
    fn decode(eval: &dyn Evaluator, genes: &[u32]) -> Setting {
        let mut s = Setting::baseline();
        for p in ParamId::ALL {
            let vals = eval.space().values(p);
            s.set(p, vals[genes[p.index()] as usize]);
        }
        // OpenTuner's configuration manipulators keep parameters
        // structurally consistent (dependent parameters are normalized),
        // so canonicalize; resource-level failures (spills, unlaunchable
        // blocks) are still discovered by running.
        eval.space().canonicalize(&mut s);
        s
    }
}

impl Tuner for OpenTunerGa {
    fn name(&self) -> &'static str {
        "OpenTuner"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let cards: Vec<u32> =
            ParamId::ALL.iter().map(|&p| eval.space().values(p).len() as u32).collect();
        assert_eq!(cards.len(), N_PARAMS);
        let pop = self.ga.n_islands * self.ga.pop_per_island;
        let mut rec = Recorder::new(pop, self.max_iterations).with_telemetry(tel);
        let mut state = GaState::new(Genome::new(cards), self.ga, seed);
        state.set_telemetry(tel);
        // OpenTuner starts from the user's default configuration and its
        // manipulators only produce well-formed configurations; seed the
        // population with compilable settings accordingly.
        let encode = |eval: &dyn Evaluator, s: &Setting| -> Vec<u32> {
            ParamId::ALL
                .iter()
                .map(|&p| eval.space().value_index(p, s.get(p)).expect("valid value") as u32)
                .collect()
        };
        let mut seeds = vec![encode(eval, &Setting::baseline())];
        for _ in 1..pop {
            let s = eval.random_valid();
            seeds.push(encode(eval, &s));
        }
        state.seed_with(&seeds);
        while !rec.done(eval) {
            let mut f = |batch: &[Vec<u32>]| -> Vec<f64> {
                // Decoding is pure, so the whole pending population can be
                // realized and prefetched at once; measurements stay
                // serial and respect the budget *inside* the generation,
                // or the overshoot can grow to a population of evaluations.
                let settings: Vec<Setting> = batch.iter().map(|g| Self::decode(eval, g)).collect();
                if !rec.done(eval) {
                    eval.prefetch(&settings);
                }
                settings
                    .iter()
                    .map(|&s| {
                        if rec.done(eval) {
                            return f64::NEG_INFINITY;
                        }
                        // OpenTuner explores the raw space: invalid
                        // settings are discovered the hard way (failed
                        // compiles, spilled or unlaunchable kernels),
                        // each costing a charged evaluation.
                        -rec.measure(eval, s)
                    })
                    .collect()
            };
            state.step_batched(&mut f);
        }
        rec.finish(self.name(), eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn opentuner_improves_over_iterations() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 5);
        let mut t = OpenTunerGa { max_iterations: 12, ..Default::default() };
        let out = t.tune(&mut e, 5).unwrap();
        assert!(out.best_time_ms.is_finite());
        let first = out.curve.first().unwrap().best_ms;
        let last = out.curve.last().unwrap().best_ms;
        assert!(last <= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("helmholtz").unwrap(), GpuArch::a100(), seed);
            OpenTunerGa { max_iterations: 6, ..Default::default() }
                .tune(&mut e, seed)
                .unwrap()
                .best_time_ms
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn decode_covers_full_value_lists() {
        // Every gene index must map to a legal value of its parameter.
        let e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 1);
        for p in ParamId::ALL {
            let vals = e.space().values(p);
            let mut genes = vec![0u32; N_PARAMS];
            genes[p.index()] = (vals.len() - 1) as u32;
            let s = OpenTunerGa::decode(&e, &genes);
            assert!(e.space().values(p).contains(&s.get(p)) || s.get(p) == 1, "{p}");
        }
    }

    #[test]
    fn seeded_population_includes_baseline_quality() {
        // The first curve point must already be competitive: the seeded
        // valid settings dominate random raw draws.
        let spec = suite::spec_by_name("cheby").unwrap();
        let mut e = SimEvaluator::new(spec.clone(), GpuArch::a100(), 3);
        let out = OpenTunerGa { max_iterations: 1, ..Default::default() }.tune(&mut e, 3).unwrap();
        let baseline = e.sim().kernel_time_ms(&Setting::baseline());
        assert!(
            out.curve[0].best_ms < baseline * 3.0,
            "first iteration {} vs baseline {}",
            out.curve[0].best_ms,
            baseline
        );
    }
}
