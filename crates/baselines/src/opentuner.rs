//! OpenTuner-style global genetic algorithm.
//!
//! OpenTuner (Ansel et al., PACT'14) is a general-purpose program
//! auto-tuner; following §V-A2 we adopt its (global) genetic algorithm
//! with options matched to csTuner's GA. The crucial differences from
//! csTuner: the genome spans the *full* Table I space (one gene per
//! parameter over its entire value list), there is no parameter grouping,
//! no model-guided sampling, and no approximation-based narrowing — so
//! convergence is slow and local optima are a real risk with a small
//! population (§V-B).
//!
//! The production path runs the GA through the ask/tell kernel
//! ([`cstuner_core::drive`]) via [`GaOptimizer`], a split-phase adapter
//! over [`GaState`]. The pre-kernel closed-loop driver is preserved as
//! [`OpenTunerGa::tune_legacy`] solely as the reference side of the
//! `ga_asktell_oracle` differential test — the two are bit-identical.

use crate::common::Recorder;
use cst_ga::{GaConfig, GaState, Genome};
use cst_space::{OptSpace, ParamId, Setting, N_PARAMS};
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};

/// The OpenTuner-like baseline.
#[derive(Debug, Clone)]
pub struct OpenTunerGa {
    /// GA options (kept consistent with csTuner per §V-A2).
    pub ga: GaConfig,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Warm-start seeds folded into the initial population.
    pub warm: Vec<Setting>,
}

impl Default for OpenTunerGa {
    fn default() -> Self {
        OpenTunerGa { ga: GaConfig::default(), max_iterations: u32::MAX, warm: Vec::new() }
    }
}

impl OpenTunerGa {
    fn decode(space: &OptSpace, genes: &[u32]) -> Setting {
        let mut s = Setting::baseline();
        for p in ParamId::ALL {
            let vals = space.values(p);
            s.set(p, vals[genes[p.index()] as usize]);
        }
        // OpenTuner's configuration manipulators keep parameters
        // structurally consistent (dependent parameters are normalized),
        // so canonicalize; resource-level failures (spills, unlaunchable
        // blocks) are still discovered by running.
        space.canonicalize(&mut s);
        s
    }

    /// The pre-kernel closed-loop driver, kept verbatim as the reference
    /// implementation for the `ga_asktell_oracle` differential test.
    /// Production tuning goes through [`cstuner_core::drive`].
    pub fn tune_legacy(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
    ) -> Result<TuningOutcome, TuneError> {
        self.tune_legacy_with_telemetry(eval, seed, &Telemetry::noop())
    }

    /// [`OpenTunerGa::tune_legacy`] with a telemetry handle.
    pub fn tune_legacy_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let cards: Vec<u32> =
            ParamId::ALL.iter().map(|&p| eval.space().values(p).len() as u32).collect();
        assert_eq!(cards.len(), N_PARAMS);
        let pop = self.ga.n_islands * self.ga.pop_per_island;
        let mut rec = Recorder::new(pop, self.max_iterations).with_telemetry(tel);
        let mut state = GaState::new(Genome::new(cards), self.ga, seed);
        state.set_telemetry(tel);
        // OpenTuner starts from the user's default configuration and its
        // manipulators only produce well-formed configurations; seed the
        // population with compilable settings accordingly.
        let encode = |eval: &dyn Evaluator, s: &Setting| -> Vec<u32> {
            ParamId::ALL
                .iter()
                .map(|&p| eval.space().value_index(p, s.get(p)).expect("valid value") as u32)
                .collect()
        };
        let mut seeds = vec![encode(eval, &Setting::baseline())];
        for _ in 1..pop {
            let s = eval.random_valid();
            seeds.push(encode(eval, &s));
        }
        state.seed_with(&seeds);
        while !rec.done(eval) {
            let mut f = |batch: &[Vec<u32>]| -> Vec<f64> {
                // Decoding is pure, so the whole pending population can be
                // realized and prefetched at once; measurements stay
                // serial and respect the budget *inside* the generation,
                // or the overshoot can grow to a population of evaluations.
                let settings: Vec<Setting> =
                    batch.iter().map(|g| Self::decode(eval.space(), g)).collect();
                if !rec.done(eval) {
                    eval.prefetch(&settings);
                }
                settings
                    .iter()
                    .map(|&s| {
                        if rec.done(eval) {
                            return f64::NEG_INFINITY;
                        }
                        // OpenTuner explores the raw space: invalid
                        // settings are discovered the hard way (failed
                        // compiles, spilled or unlaunchable kernels),
                        // each costing a charged evaluation.
                        -rec.measure(eval, s)
                    })
                    .collect()
            };
            state.step_batched(&mut f);
        }
        rec.finish(self.name(), eval)
    }
}

impl Tuner for OpenTunerGa {
    fn name(&self) -> &'static str {
        "OpenTuner"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn warm_start(&mut self, seeds: Vec<Setting>) {
        self.warm = seeds;
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = GaOptimizer::new(self.ga);
        let cfg = KernelConfig {
            pop: self.ga.n_islands * self.ga.pop_per_island,
            max_iterations: self.max_iterations,
            warm: self.warm.clone(),
            ..KernelConfig::default()
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Where the split-phase GA ledger stands inside one generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GaPhase {
    /// Next fitness assignment completes the pre-breed evaluation.
    PreBreed,
    /// Next fitness assignment completes the post-breed evaluation.
    PostBreed,
}

/// The island GA as an ask/tell [`Optimizer`]: one legacy
/// `step_batched` call unrolls to `ask(pre-breed pending) → tell →
/// breed → ask(children) → tell → finish_generation`, with fitness
/// `-time_ms` and skipped settings mapped to `NEG_INFINITY` exactly as
/// the closed-loop driver did. Bit-identical to
/// [`OpenTunerGa::tune_legacy`], which the `ga_asktell_oracle` test
/// pins.
#[derive(Debug)]
pub struct GaOptimizer {
    ga: GaConfig,
    state: Option<GaState>,
    phase: GaPhase,
    /// Settings asked and not yet fully told in the current phase.
    pending: usize,
    /// Fitnesses accumulated across (possibly chunked) tells.
    acc: Vec<f64>,
    /// Warm-start seeds folded into the initial population.
    warm: Vec<Setting>,
}

impl GaOptimizer {
    /// New adapter with the given GA options (state is built in `init`).
    pub fn new(ga: GaConfig) -> Self {
        GaOptimizer {
            ga,
            state: None,
            phase: GaPhase::PreBreed,
            pending: 0,
            acc: Vec::new(),
            warm: Vec::new(),
        }
    }

    /// Balance the ledger for the just-completed phase and advance the
    /// generation machinery.
    fn advance(&mut self, fits: &[f64]) {
        let state = self.state.as_mut().expect("init before advance");
        state.assign_pending(fits);
        match self.phase {
            GaPhase::PreBreed => {
                state.breed_generation();
                self.phase = GaPhase::PostBreed;
            }
            GaPhase::PostBreed => {
                state.finish_generation();
                self.phase = GaPhase::PreBreed;
            }
        }
    }
}

impl Optimizer for GaOptimizer {
    fn name(&self) -> &'static str {
        "OpenTuner"
    }

    fn warm_start(&mut self, seeds: &[Setting]) {
        self.warm = seeds.to_vec();
    }

    fn init(&mut self, ctx: &mut SearchCtx<'_>, seed: u64, tel: &Telemetry) {
        let cards: Vec<u32> =
            ParamId::ALL.iter().map(|&p| ctx.space().values(p).len() as u32).collect();
        assert_eq!(cards.len(), N_PARAMS);
        let pop = self.ga.n_islands * self.ga.pop_per_island;
        let mut state = GaState::new(Genome::new(cards), self.ga, seed);
        state.set_telemetry(tel);
        // Same seeding as the legacy driver: the baseline setting plus
        // pop−1 valid draws from the evaluator's stream, in that order.
        let encode = |ctx: &SearchCtx<'_>, s: &Setting| -> Vec<u32> {
            ParamId::ALL
                .iter()
                .map(|&p| ctx.space().value_index(p, s.get(p)).expect("valid value") as u32)
                .collect()
        };
        let mut seeds = vec![encode(ctx, &Setting::baseline())];
        // Warm-start seeds join right after the baseline (capped at
        // pop−1, skipping any not encodable on this space's value
        // lists); the rest of the population stays random draws, so a
        // cold run consumes the evaluator's stream exactly as before.
        let warm = std::mem::take(&mut self.warm);
        for mut s in warm {
            if seeds.len() >= pop {
                break;
            }
            ctx.space().canonicalize(&mut s);
            let encodable =
                ParamId::ALL.iter().all(|&p| ctx.space().value_index(p, s.get(p)).is_some());
            if encodable {
                seeds.push(encode(ctx, &s));
            }
        }
        while seeds.len() < pop {
            let s = ctx.random_valid();
            seeds.push(encode(ctx, &s));
        }
        state.seed_with(&seeds);
        self.state = Some(state);
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        loop {
            let genes = self.state.as_ref().expect("init before ask").pending_genes();
            if !genes.is_empty() {
                self.pending = genes.len();
                self.acc.clear();
                return genes.iter().map(|g| OpenTunerGa::decode(ctx.space(), g)).collect();
            }
            // Nothing pending in this phase: the empty assignment still
            // refreshes best-so-far (first-encounter tie rule), exactly
            // like the legacy eval_pending on an empty batch.
            self.advance(&[]);
        }
    }

    fn tell(&mut self, obs: &[Observation]) {
        for o in obs {
            self.acc.push(match o.time_ms {
                Some(t) => -t,
                None => f64::NEG_INFINITY,
            });
        }
        if self.pending > 0 && self.acc.len() >= self.pending {
            assert_eq!(self.acc.len(), self.pending, "told more settings than asked");
            let fits = std::mem::take(&mut self.acc);
            self.pending = 0;
            self.advance(&fits);
        }
    }

    fn mid_generation(&self) -> bool {
        // After the pre-breed tell the generation's ledger is only half
        // balanced: the kernel must keep feeding (possibly all-skip)
        // batches until finish_generation runs, as the legacy driver's
        // between-generations-only budget check did.
        self.phase == GaPhase::PostBreed || self.pending > 0
    }

    fn asks_valid_only(&self) -> bool {
        // Raw genome decodes are canonical but may still be resource-
        // invalid; OpenTuner discovers that by (charged) evaluation.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn opentuner_improves_over_iterations() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 5);
        let mut t = OpenTunerGa { max_iterations: 12, ..Default::default() };
        let out = t.tune(&mut e, 5).unwrap();
        assert!(out.best_time_ms.is_finite());
        let first = out.curve.first().unwrap().best_ms;
        let last = out.curve.last().unwrap().best_ms;
        assert!(last <= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("helmholtz").unwrap(), GpuArch::a100(), seed);
            OpenTunerGa { max_iterations: 6, ..Default::default() }
                .tune(&mut e, seed)
                .unwrap()
                .best_time_ms
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn decode_covers_full_value_lists() {
        // Every gene index must map to a legal value of its parameter.
        let e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 1);
        for p in ParamId::ALL {
            let vals = e.space().values(p);
            let mut genes = vec![0u32; N_PARAMS];
            genes[p.index()] = (vals.len() - 1) as u32;
            let s = OpenTunerGa::decode(e.space(), &genes);
            assert!(e.space().values(p).contains(&s.get(p)) || s.get(p) == 1, "{p}");
        }
    }

    #[test]
    fn seeded_population_includes_baseline_quality() {
        // The first curve point must already be competitive: the seeded
        // valid settings dominate random raw draws.
        let spec = suite::spec_by_name("cheby").unwrap();
        let mut e = SimEvaluator::new(spec.clone(), GpuArch::a100(), 3);
        let out = OpenTunerGa { max_iterations: 1, ..Default::default() }.tune(&mut e, 3).unwrap();
        let baseline = e.sim().kernel_time_ms(&Setting::baseline());
        assert!(
            out.curve[0].best_ms < baseline * 3.0,
            "first iteration {} vs baseline {}",
            out.curve[0].best_ms,
            baseline
        );
    }

    #[test]
    fn kernel_path_matches_legacy_bitwise() {
        // The full differential oracle lives in cst-testkit; this is the
        // crate-local smoke version of the same claim.
        for seed in [2u64, 11] {
            let spec = suite::spec_by_name("j3d7pt").unwrap();
            let mut e1 = SimEvaluator::with_budget(spec.clone(), GpuArch::a100(), seed, 40.0);
            let mut e2 = SimEvaluator::with_budget(spec, GpuArch::a100(), seed, 40.0);
            let a = OpenTunerGa::default().tune_legacy(&mut e1, seed).unwrap();
            let b = OpenTunerGa::default().tune(&mut e2, seed).unwrap();
            assert_eq!(a.best_time_ms.to_bits(), b.best_time_ms.to_bits());
            assert_eq!(a.best_setting, b.best_setting);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.search_s.to_bits(), b.search_s.to_bits());
            assert_eq!(a.curve.len(), b.curve.len());
        }
    }
}
