//! Uniform random search over valid settings.

use cst_space::Setting;
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};

/// The sanity-floor baseline: draw valid settings uniformly and keep the
/// best. Any informed tuner must beat this at equal budget.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Evaluations per iteration (matched to the GA population).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Warm-start seeds served in the first population.
    pub warm: Vec<Setting>,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch { pop: 32, max_iterations: u32::MAX, warm: Vec::new() }
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn warm_start(&mut self, seeds: Vec<Setting>) {
        self.warm = seeds;
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = RandomOptimizer { pop: self.pop, ..RandomOptimizer::default() };
        let cfg = KernelConfig {
            pop: self.pop,
            max_iterations: self.max_iterations,
            warm: self.warm.clone(),
            ..KernelConfig::default()
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Random search as an ask/tell [`Optimizer`]: one population of valid
/// draws per ask (all randomness on the evaluator's seeded stream, so
/// draw order matches the pre-kernel loop bit for bit), nothing learned
/// from tells.
#[derive(Debug, Clone)]
pub struct RandomOptimizer {
    /// Draws per ask (matched to the recorded iteration size).
    pub pop: usize,
    /// Warm-start seeds served as the first ask (instead of random
    /// draws, keeping the post-warm draw stream aligned with cold runs).
    pub warm: Vec<Setting>,
}

impl Default for RandomOptimizer {
    fn default() -> Self {
        RandomOptimizer { pop: 32, warm: Vec::new() }
    }
}

impl Optimizer for RandomOptimizer {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn warm_start(&mut self, seeds: &[Setting]) {
        self.warm = seeds.to_vec();
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        if !self.warm.is_empty() {
            let warm = std::mem::take(&mut self.warm);
            let firsts: Vec<Setting> = warm
                .into_iter()
                .map(|mut s| {
                    ctx.space().canonicalize(&mut s);
                    s
                })
                .filter(|s| ctx.is_valid(s))
                .take(self.pop)
                .collect();
            if !firsts.is_empty() {
                return firsts;
            }
        }
        (0..self.pop).map(|_| ctx.random_valid()).collect()
    }

    fn tell(&mut self, _obs: &[Observation]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn random_search_finds_finite_best() {
        let mut e = SimEvaluator::new(suite::spec_by_name("cheby").unwrap(), GpuArch::a100(), 3);
        let mut t = RandomSearch { pop: 8, max_iterations: 5, ..Default::default() };
        let out = t.tune(&mut e, 3).unwrap();
        assert_eq!(out.tuner, "Random");
        assert!(out.best_time_ms.is_finite());
        assert_eq!(out.curve.len(), 5);
    }

    #[test]
    fn iso_time_budget_stops_search() {
        let mut e = SimEvaluator::with_budget(
            suite::spec_by_name("j3d7pt").unwrap(),
            GpuArch::a100(),
            4,
            15.0,
        );
        let mut t = RandomSearch::default();
        let out = t.tune(&mut e, 4).unwrap();
        assert!(out.search_s >= 15.0);
        assert!(out.search_s < 25.0);
    }
}
