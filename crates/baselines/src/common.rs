//! Shared bookkeeping for baseline tuners.

use cst_space::Setting;
use cst_telemetry::{event, Telemetry};
use cstuner_core::{CurvePoint, Evaluator, PreprocBreakdown, TuneError, TuningOutcome};

/// Batches evaluations into iterations of `pop` and records the
/// best-so-far curve, matching the accounting of csTuner's search stage
/// ("the number of parameter settings evaluated during one iteration is
/// set to the population size", §V-A2).
#[derive(Debug, Clone)]
pub struct Recorder {
    pop: usize,
    in_iter: usize,
    iteration: u32,
    best_ms: f64,
    best_setting: Option<Setting>,
    curve: Vec<CurvePoint>,
    max_iterations: u32,
    tel: Telemetry,
}

impl Recorder {
    /// New recorder with the iteration batch size and iteration cap.
    pub fn new(pop: usize, max_iterations: u32) -> Self {
        assert!(pop > 0);
        Recorder {
            pop,
            in_iter: 0,
            iteration: 0,
            best_ms: f64::INFINITY,
            best_setting: None,
            curve: Vec::new(),
            max_iterations,
            tel: Telemetry::noop(),
        }
    }

    /// Attach a telemetry handle: every curve point this recorder pushes
    /// is mirrored as an `iteration` journal event, so baseline journals
    /// line up with csTuner's convergence records.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self
    }

    /// Evaluate a setting through the evaluator, update the incumbent, and
    /// advance iteration accounting. Returns the measured time.
    pub fn measure(&mut self, eval: &mut dyn Evaluator, s: Setting) -> f64 {
        let before = eval.unique_evaluations();
        let t = eval.evaluate(&s);
        if t < self.best_ms {
            self.best_ms = t;
            self.best_setting = Some(s);
        }
        // Memoized repeats are free on real hardware too; only fresh
        // evaluations advance the iteration counter.
        if eval.unique_evaluations() > before {
            self.in_iter += 1;
        }
        if self.in_iter >= self.pop {
            self.in_iter = 0;
            self.iteration += 1;
            self.curve.push(CurvePoint {
                iteration: self.iteration,
                elapsed_s: eval.clock().now_s(),
                best_ms: self.best_ms,
            });
            event!(
                self.tel,
                "iteration",
                iteration = self.iteration,
                v_s = eval.clock().now_s(),
                best_ms = self.best_ms,
                evals = eval.unique_evaluations(),
            );
        }
        t
    }

    /// Batched [`Recorder::measure`]: the evaluator prefetches the whole
    /// chunk's model work in parallel, then each setting is measured and
    /// accounted serially in input order, stopping once [`Recorder::done`]
    /// holds — the bookkeeping (noise draws, clock charges, curve points)
    /// is identical to the equivalent serial loop.
    pub fn measure_batch(&mut self, eval: &mut dyn Evaluator, batch: &[Setting]) {
        eval.prefetch(batch);
        for &s in batch {
            if self.done(eval) {
                break;
            }
            self.measure(eval, s);
        }
    }

    /// Whether the tuner should stop (budget or iteration cap).
    pub fn done(&self, eval: &dyn Evaluator) -> bool {
        eval.expired() || self.iteration >= self.max_iterations
    }

    /// Current best time.
    pub fn best_ms(&self) -> f64 {
        self.best_ms
    }

    /// Current best setting, if any finite evaluation happened.
    pub fn best_setting(&self) -> Option<Setting> {
        self.best_setting
    }

    /// Finalize into a [`TuningOutcome`].
    pub fn finish(
        mut self,
        name: &'static str,
        eval: &dyn Evaluator,
    ) -> Result<TuningOutcome, TuneError> {
        if self.in_iter > 0 || self.curve.is_empty() {
            self.iteration += 1;
            self.curve.push(CurvePoint {
                iteration: self.iteration,
                elapsed_s: eval.clock().now_s(),
                best_ms: self.best_ms,
            });
            event!(
                self.tel,
                "iteration",
                iteration = self.iteration,
                v_s = eval.clock().now_s(),
                best_ms = self.best_ms,
                evals = eval.unique_evaluations(),
            );
        }
        let best_setting = self.best_setting.ok_or(TuneError::BudgetTooSmall)?;
        if !self.best_ms.is_finite() {
            return Err(TuneError::EmptySpace);
        }
        Ok(TuningOutcome {
            tuner: name,
            best_setting,
            best_time_ms: self.best_ms,
            curve: self.curve,
            evaluations: eval.unique_evaluations(),
            search_s: eval.clock().now_s(),
            preproc: PreprocBreakdown::default(),
            faults: eval.fault_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn recorder_batches_iterations() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 1);
        let mut r = Recorder::new(4, 100);
        for _ in 0..9 {
            let s = e.random_valid();
            r.measure(&mut e, s);
        }
        let out = r.finish("test", &e).unwrap();
        // 9 evals at pop 4 → 2 full iterations + 1 flush.
        assert_eq!(out.curve.len(), 3);
        assert_eq!(out.curve.last().unwrap().iteration, 3);
    }

    #[test]
    fn recorder_respects_iteration_cap() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 2);
        let mut r = Recorder::new(2, 3);
        let mut n = 0;
        while !r.done(&e) && n < 100 {
            let s = e.random_valid();
            r.measure(&mut e, s);
            n += 1;
        }
        assert_eq!(n, 6, "3 iterations × pop 2");
    }
}
