//! Shared bookkeeping for baseline tuners.
//!
//! The [`Recorder`] (iteration batching, best-so-far curve, `iteration`
//! journal events) moved into the core ask/tell kernel
//! (`cstuner_core::asktell`) when the search loop was unified; it is
//! re-exported here so baseline code and downstream users keep their
//! import path.

pub use cstuner_core::Recorder;
