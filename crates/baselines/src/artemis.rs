//! Artemis-style hierarchical auto-tuning (Rawat et al., IPDPS'19),
//! re-implemented per §II-C/§V-A2: "Artemis tunes the computation for
//! high-impact optimizations first and then selects a few high-performance
//! candidates".
//!
//! The expert knowledge lives in [`high_impact_params`]: which
//! optimizations matter most is decided from the stencil's class, not
//! learned from data — effective for most stencils (§V-C) but without the
//! generality of csTuner's statistic-driven grouping (§V-D).

use crate::common::Recorder;
use cst_space::{ParamId, Setting};
use cst_stencil::StencilClass;
use cst_telemetry::Telemetry;
use cstuner_core::{Evaluator, TuneError, Tuner, TuningOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Artemis baseline.
#[derive(Debug, Clone)]
pub struct ArtemisTuner {
    /// High-performance candidates kept after the first phase.
    pub candidates: usize,
    /// Evaluations per iteration (matched to the GA population size).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Cap on enumerated combinations of the high-impact phase.
    pub enum_limit: usize,
}

impl Default for ArtemisTuner {
    fn default() -> Self {
        ArtemisTuner { candidates: 4, pop: 32, max_iterations: u32::MAX, enum_limit: 1024 }
    }
}

/// Expert choice of high-impact optimizations per stencil class:
/// bandwidth-bound stencils live or die by the thread-block shape,
/// streaming and shared-memory staging; compute-bound stencils by the
/// block shape, register-level unrolling and merging.
pub fn high_impact_params(class: StencilClass) -> Vec<ParamId> {
    match class {
        StencilClass::MemoryBound => vec![
            ParamId::TBx,
            ParamId::TBy,
            ParamId::UseShared,
            ParamId::UseStreaming,
            ParamId::SD,
            ParamId::SB,
        ],
        StencilClass::ComputeBound => vec![
            ParamId::TBx,
            ParamId::TBy,
            ParamId::UFx,
            ParamId::UFy,
            ParamId::BMy,
            ParamId::UseRetiming,
        ],
    }
}

/// The remaining parameters, tuned greedily in the second phase.
fn low_impact_params(high: &[ParamId]) -> Vec<ParamId> {
    ParamId::ALL.iter().copied().filter(|p| !high.contains(p)).collect()
}

/// Expert pruning of a parameter's value list: the hand-tuned ranges a
/// GPU performance engineer would actually sweep (no 1-wide thread
/// blocks, no 512-fold unrolling). This is the "expert knowledge" §II-C
/// says the hierarchical tuners rely on.
pub fn expert_values(p: ParamId, full: &[u32]) -> Vec<u32> {
    let keep: Box<dyn Fn(u32) -> bool> = match p {
        ParamId::TBx => Box::new(|v| (8..=256).contains(&v)),
        ParamId::TBy => Box::new(|v| (1..=32).contains(&v)),
        ParamId::TBz => Box::new(|v| v <= 4),
        ParamId::UFx | ParamId::UFy | ParamId::UFz => Box::new(|v| v <= 8),
        ParamId::BMx | ParamId::BMy | ParamId::BMz | ParamId::CMx | ParamId::CMy | ParamId::CMz => {
            Box::new(|v| v <= 16)
        }
        ParamId::SB => Box::new(|v| v >= 8),
        _ => Box::new(|_| true),
    };
    let pruned: Vec<u32> = full.iter().copied().filter(|&v| keep(v)).collect();
    if pruned.is_empty() {
        full.to_vec()
    } else {
        pruned
    }
}

impl Tuner for ArtemisTuner {
    fn name(&self) -> &'static str {
        "Artemis"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let high = high_impact_params(eval.spec().class);
        let base = Setting::baseline();
        let mut rec = Recorder::new(self.pop, self.max_iterations).with_telemetry(tel);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0a87_e315);

        // Phase 1: the expert's coarse high-impact sweep. Rather than the
        // full cartesian product (which no human would time), Artemis
        // evaluates the curated grid of known-good thread-block shapes
        // crossed with the class's high-impact optimizations, shuffled so
        // budget caps cut it without enumeration bias.
        // The grid reflects the expert knowledge of Artemis's era (pre-
        // Ampere): modest thread-block shapes, classic 2.5-D shared
        // streaming at full extent (no concurrent-streaming SB sweep —
        // that interaction is exactly what data-driven tuning discovers),
        // and register-level levers for compute-bound kernels.
        let ext_sd = eval.spec().grid[2] as u32;
        let tb_shapes: [(u32, u32); 5] = [(32, 4), (64, 2), (32, 8), (128, 1), (64, 4)];
        let mut phase1: Vec<Setting> = Vec::new();
        for &(tbx, tby) in &tb_shapes {
            let tb = base.with(ParamId::TBx, tbx).with(ParamId::TBy, tby).with(ParamId::TBz, 1);
            // Plain, and the classic 2.5-D shared-memory streaming config.
            let variants = [
                tb,
                tb.with(ParamId::UseShared, 2)
                    .with(ParamId::UseStreaming, 2)
                    .with(ParamId::SD, 3)
                    .with(ParamId::TBz, 1)
                    .with(ParamId::SB, ext_sd),
            ];
            for v in variants {
                match eval.spec().class {
                    StencilClass::MemoryBound => phase1.push(v),
                    StencilClass::ComputeBound => {
                        // Compute-bound kernels: also probe unrolling and
                        // retiming, the register-level levers.
                        phase1.push(v);
                        phase1.push(
                            v.with(ParamId::UFx, 4).with(ParamId::BMx, 1).with(ParamId::CMx, 4),
                        );
                        phase1.push(v.with(ParamId::UseRetiming, 2));
                    }
                }
            }
        }
        let mut cleaned: Vec<Setting> = Vec::new();
        for mut s in phase1 {
            eval.space().canonicalize(&mut s);
            if eval.space().is_explicit_valid(&s) && !cleaned.contains(&s) {
                cleaned.push(s);
            }
        }
        cleaned.shuffle(&mut rng);
        cleaned.truncate(self.enum_limit);
        eval.prefetch(&cleaned);
        let mut ranked: Vec<(f64, Setting)> = Vec::new();
        for s in cleaned {
            if rec.done(eval) {
                break;
            }
            let t = rec.measure(eval, s);
            if t.is_finite() {
                ranked.push((t, s));
            }
        }
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        ranked.truncate(self.candidates);

        // Phase 2: per candidate, greedy coordinate sweep over the
        // low-impact parameters.
        let low = low_impact_params(&high);
        for (_, cand) in ranked {
            if rec.done(eval) {
                break;
            }
            let mut current = cand;
            let mut current_t = rec.measure(eval, current);
            for &p in &low {
                if rec.done(eval) {
                    break;
                }
                // Experts sweep each remaining knob over its sensible
                // range, not the full power-of-two ladder. The sweep's
                // settings are known up front, so prefetch them together.
                let vals: Vec<u32> = expert_values(p, eval.space().values(p));
                let sweep: Vec<Setting> = vals
                    .iter()
                    .filter(|&&v| v != current.get(p))
                    .filter_map(|&v| {
                        let mut s = current.with(p, v);
                        eval.space().canonicalize(&mut s);
                        eval.space().is_explicit_valid(&s).then_some(s)
                    })
                    .collect();
                eval.prefetch(&sweep);
                for s in sweep {
                    if rec.done(eval) {
                        break;
                    }
                    let t = rec.measure(eval, s);
                    if t < current_t {
                        current_t = t;
                        current = s;
                    }
                }
            }
        }
        rec.finish(self.name(), eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn high_impact_depends_on_class() {
        let mem = high_impact_params(StencilClass::MemoryBound);
        let cmp = high_impact_params(StencilClass::ComputeBound);
        assert!(mem.contains(&ParamId::UseStreaming));
        assert!(cmp.contains(&ParamId::UFx));
        assert_ne!(mem, cmp);
    }

    #[test]
    fn low_impact_complements_high() {
        let high = high_impact_params(StencilClass::MemoryBound);
        let low = low_impact_params(&high);
        assert_eq!(high.len() + low.len(), ParamId::ALL.len());
    }

    #[test]
    fn artemis_beats_naive_baseline() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d27pt").unwrap(), GpuArch::a100(), 13);
        let mut t = ArtemisTuner { max_iterations: 25, ..Default::default() };
        let out = t.tune(&mut e, 13).unwrap();
        let baseline = e.sim().kernel_time_ms(&Setting::baseline());
        assert!(out.best_time_ms <= baseline, "{} vs {}", out.best_time_ms, baseline);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut e = SimEvaluator::new(suite::spec_by_name("addsgd4").unwrap(), GpuArch::a100(), 17);
        let mut t = ArtemisTuner { max_iterations: 3, ..Default::default() };
        let out = t.tune(&mut e, 17).unwrap();
        assert!(out.curve.last().unwrap().iteration <= 4);
    }
}
