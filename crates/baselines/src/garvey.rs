//! Garvey & Abdelrahman's stencil auto-tuner (ICPP'15), re-implemented
//! per §V-A2: random-forest memory-type prediction, expert grouping by
//! dimension, 10% random sampling per group, and iterative exhaustive
//! per-group search.
//!
//! The contrast with csTuner is the point of the baseline: the grouping is
//! hand-crafted rather than data-driven (Algorithm 1), and the sampling is
//! *random* rather than PMNF-guided — which is why Garvey converges fast
//! but lands on unstable final quality (§V-B/C: "the random sampling
//! approach limits the stability of its performance", "the parameter
//! settings determined by Garvey achieve the worst performance due to the
//! low quality of the sampled search space").

use crate::common::Recorder;
use cst_ml::Surrogate;
use cst_space::{ParamId, Setting};
use cst_telemetry::Telemetry;
use cstuner_core::{Evaluator, PerfDataset, TuneError, Tuner, TuningOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Garvey baseline.
#[derive(Debug, Clone)]
pub struct GarveyTuner {
    /// Offline dataset size used to train the memory-type forest.
    pub dataset_size: usize,
    /// Random sampling ratio per group (§V-A2: 10%).
    pub sampling_ratio: f64,
    /// Evaluations per iteration (matched to the GA population size).
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Cap on enumerated combinations per group.
    pub enum_limit: usize,
}

impl Default for GarveyTuner {
    fn default() -> Self {
        GarveyTuner {
            dataset_size: 128,
            sampling_ratio: 0.10,
            pop: 32,
            max_iterations: u32::MAX,
            enum_limit: 8192,
        }
    }
}

/// Memory-type classes the random forest predicts: the cross product of
/// shared-memory and constant-memory usage.
fn memory_class(s: &Setting) -> usize {
    (s.use_shared() as usize) | ((s.use_constant() as usize) << 1)
}

/// Expert grouping by dimension ("we select the optimization of grouping
/// by dimension in [13]"): x/y/z parameter bundles plus the streaming
/// bundle and retiming.
fn dimension_groups() -> Vec<Vec<ParamId>> {
    vec![
        vec![ParamId::TBx, ParamId::UFx, ParamId::CMx, ParamId::BMx],
        vec![ParamId::TBy, ParamId::UFy, ParamId::CMy, ParamId::BMy],
        vec![ParamId::TBz, ParamId::UFz, ParamId::CMz, ParamId::BMz],
        vec![ParamId::UseStreaming, ParamId::SD, ParamId::SB, ParamId::UsePrefetching],
        vec![ParamId::UseRetiming],
    ]
}

impl Tuner for GarveyTuner {
    fn name(&self) -> &'static str {
        "Garvey"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a2_7e1);
        // Offline: dataset for the memory-type forest (like csTuner's
        // dataset, not charged to the tuning clock).
        let dataset = PerfDataset::collect(eval, self.dataset_size, seed);

        // Train the shared fast/slow surrogate (q30 labeling lives in
        // cst_ml::Surrogate now), then pick the memory class with the
        // highest predicted-fast vote.
        let times = dataset.times();
        let xs: Vec<Vec<f64>> =
            dataset.records.iter().map(|r| r.setting.features().to_vec()).collect();
        let surrogate = Surrogate::fit(&xs, &times, &mut rng).expect("dataset has records");
        let mut class_score = [0.0f64; 4];
        let mut class_n = [0usize; 4];
        for r in &dataset.records {
            let c = memory_class(&r.setting);
            class_score[c] += surrogate.score(&r.setting.features());
            class_n[c] += 1;
        }
        let best_class = (0..4)
            .filter(|&c| class_n[c] > 0)
            .max_by(|&a, &b| {
                (class_score[a] / class_n[a] as f64)
                    .partial_cmp(&(class_score[b] / class_n[b] as f64))
                    .unwrap()
            })
            .unwrap_or(0);

        // Fix the memory type; start from the dataset's best setting in
        // that class (or overall best if the class is empty there).
        let mut base = dataset
            .records
            .iter()
            .filter(|r| memory_class(&r.setting) == best_class)
            .min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap())
            .map(|r| r.setting)
            .unwrap_or(dataset.best().setting);
        base.set(ParamId::UseShared, 1 + (best_class & 1) as u32);
        base.set(ParamId::UseConstant, 1 + ((best_class >> 1) & 1) as u32);

        // Iterative per-group exhaustive search over *randomly* sampled
        // group combinations.
        let mut rec = Recorder::new(self.pop, self.max_iterations).with_telemetry(tel);
        rec.measure(eval, base);
        for group in dimension_groups() {
            if rec.done(eval) {
                break;
            }
            let mut combos = eval.space().enumerate_group_repaired(&base, &group, self.enum_limit);
            combos.shuffle(&mut rng);
            let keep = ((combos.len() as f64 * self.sampling_ratio).ceil() as usize)
                .max(2)
                .min(combos.len());
            combos.truncate(keep);
            // Realize the whole sampled group up front so the evaluator
            // can warm its model caches in parallel; measurements then
            // commit serially with the same done-checks as before.
            let settings: Vec<Setting> = combos
                .iter()
                .map(|combo| {
                    let mut s = base;
                    for (&p, &v) in group.iter().zip(combo) {
                        s.set(p, v);
                    }
                    s.canonicalize();
                    s
                })
                .collect();
            eval.prefetch(&settings);
            let mut best_combo: Option<Vec<u32>> = None;
            let mut best_t = f64::INFINITY;
            for (combo, &s) in combos.iter().zip(&settings) {
                if rec.done(eval) {
                    break;
                }
                let t = rec.measure(eval, s);
                if t < best_t {
                    best_t = t;
                    best_combo = Some(combo.clone());
                }
            }
            if let Some(combo) = best_combo {
                if best_t.is_finite() {
                    for (&p, &v) in group.iter().zip(&combo) {
                        base.set(p, v);
                    }
                    base.canonicalize();
                }
            }
        }
        rec.finish(self.name(), eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    fn quick() -> GarveyTuner {
        GarveyTuner { dataset_size: 48, max_iterations: 20, ..Default::default() }
    }

    #[test]
    fn garvey_finds_reasonable_setting() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 7);
        let out = quick().tune(&mut e, 7).unwrap();
        assert_eq!(out.tuner, "Garvey");
        assert!(out.best_time_ms.is_finite());
        // Should at least match the dataset incumbent's ballpark.
        let baseline = e.sim().kernel_time_ms(&Setting::baseline());
        assert!(out.best_time_ms < baseline * 1.5);
    }

    #[test]
    fn dimension_groups_partition_non_memory_params() {
        let groups = dimension_groups();
        let mut all: Vec<ParamId> = groups.concat();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 17); // everything except the two memory bools
        assert!(!all.contains(&ParamId::UseShared));
        assert!(!all.contains(&ParamId::UseConstant));
    }

    #[test]
    fn memory_class_encoding() {
        let s = Setting::baseline();
        assert_eq!(memory_class(&s), 0);
        assert_eq!(memory_class(&s.with(ParamId::UseShared, 2)), 1);
        assert_eq!(memory_class(&s.with(ParamId::UseConstant, 2)), 2);
        assert_eq!(memory_class(&s.with(ParamId::UseShared, 2).with(ParamId::UseConstant, 2)), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("cheby").unwrap(), GpuArch::a100(), seed);
            quick().tune(&mut e, seed).unwrap().best_time_ms
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn sampling_ratio_bounds_evaluations() {
        // Garvey's whole point: a tiny randomly-sampled subspace. At 5%
        // it must finish (space exhausted) well before a generous
        // iteration cap, with far fewer evaluations than the full group
        // spaces contain.
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 5);
        let mut t = GarveyTuner {
            dataset_size: 48,
            sampling_ratio: 0.05,
            max_iterations: 1000,
            ..Default::default()
        };
        let out = t.tune(&mut e, 5).unwrap();
        assert!(out.evaluations < 500, "evaluated {}", out.evaluations);
        assert!(out.best_time_ms.is_finite());
    }

    #[test]
    fn instability_across_seeds_exceeds_dataset_noise() {
        // §V-B: "the random sampling approach limits the stability of its
        // performance" — different seeds land on meaningfully different
        // final quality.
        let spec = suite::spec_by_name("addsgd4").unwrap();
        let mut results = Vec::new();
        for seed in 0..5 {
            let mut e = SimEvaluator::with_budget(spec.clone(), GpuArch::a100(), seed, 60.0);
            results.push(quick().tune(&mut e, seed).unwrap().best_time_ms);
        }
        let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = results.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.02, "suspiciously stable: {results:?}");
    }
}
