//! Coarse grid search over the parameter lattice.
//!
//! The classic manual-tuning strategy: pick a few evenly-spaced levels
//! per parameter and sweep the cross product in lexicographic order.
//! Entirely deterministic — no rng at all — which makes it the
//! simplest possible conformance case for the ask/tell kernel and a
//! useful "no intelligence, full coverage" contrast to random search
//! (which has no coverage guarantee) and the GA (which has no order
//! guarantee).

use cst_space::{ParamId, Setting, SettingSet};
use cst_telemetry::Telemetry;
use cstuner_core::{
    drive, Evaluator, KernelConfig, Observation, Optimizer, SearchCtx, TuneError, Tuner,
    TuningOutcome,
};

/// The grid-sweep baseline.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Lattice levels per parameter (evenly spaced over its value list).
    pub levels: usize,
    /// Evaluations per recorded iteration.
    pub pop: usize,
    /// Iteration cap.
    pub max_iterations: u32,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch { levels: 4, pop: 32, max_iterations: u32::MAX }
    }
}

impl Tuner for GridSearch {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn tune(&mut self, eval: &mut dyn Evaluator, seed: u64) -> Result<TuningOutcome, TuneError> {
        self.tune_with_telemetry(eval, seed, &Telemetry::noop())
    }

    fn tune_with_telemetry(
        &mut self,
        eval: &mut dyn Evaluator,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, TuneError> {
        let mut opt = GridOptimizer::new(self.levels, self.pop);
        let cfg = KernelConfig {
            pop: self.pop,
            max_iterations: self.max_iterations,
            // Backstop only: the seen-filter below already guarantees
            // every asked setting is new to this run.
            stall_limit: 10_000,
            // Grid sweeps visit the lattice exhaustively; warm-start
            // seeds would only reorder coverage, so none are taken.
            warm: Vec::new(),
        };
        drive(&mut opt, eval, &cfg, seed, tel)
    }
}

/// Grid sweep as an ask/tell [`Optimizer`]: a mixed-radix odometer over
/// per-parameter lattice index lists, canonicalized and deduplicated
/// (canonicalization collapses inactive-dimension combos onto one
/// setting), `pop` fresh lattice points per ask, empty ask once the
/// lattice is exhausted.
#[derive(Debug)]
pub struct GridOptimizer {
    levels: usize,
    pop: usize,
    /// Per-parameter lattice: indices into the parameter's value list.
    lattice: Vec<Vec<usize>>,
    /// Odometer over `lattice` (None once exhausted).
    cursor: Option<Vec<usize>>,
    /// Canonical settings already asked this run.
    seen: SettingSet,
}

impl GridOptimizer {
    /// New sweep with `levels` lattice points per parameter, `pop`
    /// settings per ask.
    pub fn new(levels: usize, pop: usize) -> Self {
        assert!(levels > 0 && pop > 0);
        GridOptimizer {
            levels,
            pop,
            lattice: Vec::new(),
            cursor: None,
            seen: SettingSet::default(),
        }
    }

    /// Advance the odometer (last parameter fastest). Returns false once
    /// the sweep wraps.
    fn step(&mut self) -> bool {
        let cur = match &mut self.cursor {
            Some(c) => c,
            None => return false,
        };
        for i in (0..cur.len()).rev() {
            cur[i] += 1;
            if cur[i] < self.lattice[i].len() {
                return true;
            }
            cur[i] = 0;
        }
        self.cursor = None;
        false
    }
}

impl Optimizer for GridOptimizer {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn init(&mut self, ctx: &mut SearchCtx<'_>, _seed: u64, _tel: &Telemetry) {
        self.lattice = ParamId::ALL
            .iter()
            .map(|&p| {
                let n = ctx.space().values(p).len();
                let mut idx: Vec<usize> = if self.levels == 1 {
                    vec![0]
                } else if n <= self.levels {
                    (0..n).collect()
                } else {
                    (0..self.levels)
                        .map(|i| (i * (n - 1) + (self.levels - 1) / 2) / (self.levels - 1))
                        .collect()
                };
                idx.dedup();
                idx
            })
            .collect();
        self.cursor = Some(vec![0; self.lattice.len()]);
        self.seen.clear();
    }

    fn ask(&mut self, ctx: &mut SearchCtx<'_>) -> Vec<Setting> {
        let mut batch = Vec::with_capacity(self.pop);
        while batch.len() < self.pop {
            let cur = match &self.cursor {
                Some(c) => c.clone(),
                None => break,
            };
            let mut s = Setting::baseline();
            for (i, &p) in ParamId::ALL.iter().enumerate() {
                let vals = ctx.space().values(p);
                s.set(p, vals[self.lattice[i][cur[i]]]);
            }
            ctx.space().canonicalize(&mut s);
            if self.seen.insert(s) {
                batch.push(s);
            }
            if !self.step() {
                break;
            }
        }
        batch
    }

    fn tell(&mut self, _obs: &[Observation]) {}

    fn asks_valid_only(&self) -> bool {
        // Lattice points are canonical but may be resource-invalid; like
        // OpenTuner, the grid discovers that by charged evaluation.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cst_gpu_sim::GpuArch;
    use cst_stencil::suite;
    use cstuner_core::SimEvaluator;

    #[test]
    fn grid_finds_finite_best_and_is_seedless_deterministic() {
        let run = |seed| {
            let mut e =
                SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 1);
            GridSearch { pop: 8, max_iterations: 4, ..Default::default() }
                .tune(&mut e, seed)
                .unwrap()
        };
        let a = run(1);
        let b = run(99);
        assert_eq!(a.tuner, "Grid");
        assert!(a.best_time_ms.is_finite());
        // No rng anywhere: the sweep ignores the seed entirely.
        assert_eq!(a.best_time_ms.to_bits(), b.best_time_ms.to_bits());
        assert_eq!(a.best_setting, b.best_setting);
    }

    #[test]
    fn exhausted_lattice_ends_run_early() {
        // levels=1 → a single lattice point (the first value of every
        // list): the sweep exhausts after one setting and the run ends
        // without touching the budget loop.
        let mut e = SimEvaluator::new(suite::spec_by_name("cheby").unwrap(), GpuArch::a100(), 2);
        let out = GridSearch { levels: 1, pop: 8, max_iterations: 100 }.tune(&mut e, 2).unwrap();
        assert_eq!(out.evaluations, 1);
    }

    #[test]
    fn asked_settings_never_repeat() {
        let mut e = SimEvaluator::new(suite::spec_by_name("j3d7pt").unwrap(), GpuArch::a100(), 3);
        let mut opt = GridOptimizer::new(3, 16);
        opt.init(&mut SearchCtx::new(&mut e), 0, &Telemetry::noop());
        let mut all = SettingSet::default();
        for _ in 0..6 {
            let batch = opt.ask(&mut SearchCtx::new(&mut e));
            for s in batch {
                assert!(all.insert(s), "duplicate lattice setting asked");
            }
        }
    }
}
