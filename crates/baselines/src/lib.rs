//! Re-implementations of the auto-tuners csTuner is evaluated against
//! (§V-A2), plus the kernel-native strategies the ask/tell refactor
//! unlocked:
//!
//! - [`RandomSearch`] — uniform random sampling of valid settings, the
//!   floor any tuner must beat.
//! - [`OpenTunerGa`] — an OpenTuner-style *global* genetic algorithm over
//!   the full parameter space, options matched to csTuner's GA; no
//!   grouping, no model-guided sampling.
//! - [`GarveyTuner`] — Garvey & Abdelrahman (ICPP'15): a random forest
//!   predicts the optimal memory type, the remaining parameters are
//!   grouped *by dimension* (expert knowledge), each group is randomly
//!   sampled at the configured ratio and searched exhaustively, group by
//!   group.
//! - [`ArtemisTuner`] — Rawat et al. (IPDPS'19) style hierarchical
//!   auto-tuning: high-impact optimizations (chosen per stencil class by
//!   expert knowledge) are tuned first, a few high-performance candidates
//!   are kept, and the remaining parameters are tuned greedily per
//!   candidate.
//! - [`GridSearch`] — a deterministic coarse lattice sweep (no rng).
//! - [`AnnealTuner`] — single-chain simulated annealing with Metropolis
//!   accepts over the canonical setting space.
//! - [`ForestTuner`] — an online random-forest surrogate (via `cst-ml`)
//!   trained on told records, pre-ranking candidate settings.
//!
//! All tuners speak the same [`Tuner`] interface and produce the same
//! [`TuningOutcome`] curve format as csTuner, so the experiment harness
//! can run the paper's iso-iteration and iso-time comparisons directly.
//! The [`zoo`] module is the single registry the CLI, the serve daemon,
//! and the shootout example resolve tuner names through.

pub mod anneal;
pub mod artemis;
pub mod common;
pub mod forest;
pub mod garvey;
pub mod grid;
pub mod opentuner;
pub mod random;
pub mod zoo;

pub use anneal::{AnnealTuner, SaOptimizer};
pub use artemis::ArtemisTuner;
pub use forest::{ForestOptimizer, ForestTuner};
pub use garvey::GarveyTuner;
pub use grid::{GridOptimizer, GridSearch};
pub use opentuner::{GaOptimizer, OpenTunerGa};
pub use random::{RandomOptimizer, RandomSearch};

pub use cstuner_core::{Optimizer, Tuner, TuningOutcome};
