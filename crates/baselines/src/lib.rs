//! Re-implementations of the auto-tuners csTuner is evaluated against
//! (§V-A2):
//!
//! - [`RandomSearch`] — uniform random sampling of valid settings, the
//!   floor any tuner must beat.
//! - [`OpenTunerGa`] — an OpenTuner-style *global* genetic algorithm over
//!   the full parameter space, options matched to csTuner's GA; no
//!   grouping, no model-guided sampling.
//! - [`GarveyTuner`] — Garvey & Abdelrahman (ICPP'15): a random forest
//!   predicts the optimal memory type, the remaining parameters are
//!   grouped *by dimension* (expert knowledge), each group is randomly
//!   sampled at the configured ratio and searched exhaustively, group by
//!   group.
//! - [`ArtemisTuner`] — Rawat et al. (IPDPS'19) style hierarchical
//!   auto-tuning: high-impact optimizations (chosen per stencil class by
//!   expert knowledge) are tuned first, a few high-performance candidates
//!   are kept, and the remaining parameters are tuned greedily per
//!   candidate.
//!
//! All four speak the same [`Tuner`] interface and produce the same
//! [`TuningOutcome`] curve format as csTuner, so the experiment harness
//! can run the paper's iso-iteration and iso-time comparisons directly.

pub mod artemis;
pub mod common;
pub mod garvey;
pub mod opentuner;
pub mod random;

pub use artemis::ArtemisTuner;
pub use garvey::GarveyTuner;
pub use opentuner::OpenTunerGa;
pub use random::RandomSearch;

pub use cstuner_core::{Tuner, TuningOutcome};
