//! Parameter identities and kinds (the rows of Table I).

/// Number of tuning parameters.
pub const N_PARAMS: usize = 19;

/// One tuning parameter of Table I.
///
/// The discriminant is the parameter's index into a [`crate::Setting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum ParamId {
    /// Thread block extent along x.
    TBx = 0,
    /// Thread block extent along y.
    TBy = 1,
    /// Thread block extent along z.
    TBz = 2,
    /// Stage tiles in shared memory (1 = off, 2 = on).
    UseShared = 3,
    /// Place coefficients in constant memory (1 = off, 2 = on).
    UseConstant = 4,
    /// Stream 2-D tiles over one dimension (1 = off, 2 = on).
    UseStreaming = 5,
    /// Streaming dimension (1 = x, 2 = y, 3 = z).
    SD = 6,
    /// Concurrent-streaming tile extent along the streaming dimension.
    SB = 7,
    /// Loop unroll factor along x.
    UFx = 8,
    /// Loop unroll factor along y.
    UFy = 9,
    /// Loop unroll factor along z.
    UFz = 10,
    /// Cyclic merging factor along x.
    CMx = 11,
    /// Cyclic merging factor along y.
    CMy = 12,
    /// Cyclic merging factor along z.
    CMz = 13,
    /// Block merging factor along x.
    BMx = 14,
    /// Block merging factor along y.
    BMy = 15,
    /// Block merging factor along z.
    BMz = 16,
    /// Retiming: decompose into accumulated sub-stencils (1 = off, 2 = on).
    UseRetiming = 17,
    /// Prefetching: overlap next-iteration loads (1 = off, 2 = on).
    UsePrefetching = 18,
}

/// Value semantics of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Power-of-two numeric parameter.
    Pow2,
    /// Boolean encoded as {1 = off, 2 = on}.
    Bool,
    /// Small enumeration starting at 1.
    Enum,
}

impl ParamId {
    /// All parameters in Table I order.
    pub const ALL: [ParamId; N_PARAMS] = [
        ParamId::TBx,
        ParamId::TBy,
        ParamId::TBz,
        ParamId::UseShared,
        ParamId::UseConstant,
        ParamId::UseStreaming,
        ParamId::SD,
        ParamId::SB,
        ParamId::UFx,
        ParamId::UFy,
        ParamId::UFz,
        ParamId::CMx,
        ParamId::CMy,
        ParamId::CMz,
        ParamId::BMx,
        ParamId::BMy,
        ParamId::BMz,
        ParamId::UseRetiming,
        ParamId::UsePrefetching,
    ];

    /// Index into a [`crate::Setting`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`ParamId::index`].
    ///
    /// # Panics
    /// Panics if `i >= N_PARAMS`.
    pub fn from_index(i: usize) -> ParamId {
        Self::ALL[i]
    }

    /// Short display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            ParamId::TBx => "TB_x",
            ParamId::TBy => "TB_y",
            ParamId::TBz => "TB_z",
            ParamId::UseShared => "useShared",
            ParamId::UseConstant => "useConstant",
            ParamId::UseStreaming => "useStreaming",
            ParamId::SD => "SD",
            ParamId::SB => "SB",
            ParamId::UFx => "UF_x",
            ParamId::UFy => "UF_y",
            ParamId::UFz => "UF_z",
            ParamId::CMx => "CM_x",
            ParamId::CMy => "CM_y",
            ParamId::CMz => "CM_z",
            ParamId::BMx => "BM_x",
            ParamId::BMy => "BM_y",
            ParamId::BMz => "BM_z",
            ParamId::UseRetiming => "useRetiming",
            ParamId::UsePrefetching => "usePrefetching",
        }
    }

    /// Value semantics.
    pub fn kind(self) -> ParamKind {
        match self {
            ParamId::UseShared
            | ParamId::UseConstant
            | ParamId::UseStreaming
            | ParamId::UseRetiming
            | ParamId::UsePrefetching => ParamKind::Bool,
            ParamId::SD => ParamKind::Enum,
            _ => ParamKind::Pow2,
        }
    }

    /// The optimization technique this parameter belongs to (Table I
    /// "Optimization" column).
    pub fn optimization(self) -> &'static str {
        match self {
            ParamId::TBx | ParamId::TBy | ParamId::TBz => "TB Dimension",
            ParamId::UseShared => "Shared Memory",
            ParamId::UseConstant => "Constant Memory",
            ParamId::UseStreaming => "Streaming",
            ParamId::SD => "Streaming Dimension",
            ParamId::SB => "Concurrent Streaming",
            ParamId::UFx | ParamId::UFy | ParamId::UFz => "Loop Unrolling",
            ParamId::CMx | ParamId::CMy | ParamId::CMz => "Cyclic Merging",
            ParamId::BMx | ParamId::BMy | ParamId::BMz => "Block Merging",
            ParamId::UseRetiming => "Retiming",
            ParamId::UsePrefetching => "Prefetching",
        }
    }

    /// The grid dimension (0 = x, 1 = y, 2 = z) a per-dimension parameter
    /// refers to, if any.
    pub fn dimension(self) -> Option<usize> {
        match self {
            ParamId::TBx | ParamId::UFx | ParamId::CMx | ParamId::BMx => Some(0),
            ParamId::TBy | ParamId::UFy | ParamId::CMy | ParamId::BMy => Some(1),
            ParamId::TBz | ParamId::UFz | ParamId::CMz | ParamId::BMz => Some(2),
            _ => None,
        }
    }
}

impl std::fmt::Display for ParamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_indices_roundtrip() {
        for (i, p) in ParamId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(ParamId::from_index(i), *p);
        }
    }

    #[test]
    fn kinds_are_consistent_with_table_i() {
        assert_eq!(ParamId::TBx.kind(), ParamKind::Pow2);
        assert_eq!(ParamId::UseShared.kind(), ParamKind::Bool);
        assert_eq!(ParamId::SD.kind(), ParamKind::Enum);
        assert_eq!(ParamId::SB.kind(), ParamKind::Pow2);
    }

    #[test]
    fn eleven_optimizations_are_covered() {
        let mut opts: Vec<_> = ParamId::ALL.iter().map(|p| p.optimization()).collect();
        opts.sort_unstable();
        opts.dedup();
        assert_eq!(opts.len(), 11);
    }

    #[test]
    fn dimension_mapping() {
        assert_eq!(ParamId::TBy.dimension(), Some(1));
        assert_eq!(ParamId::BMz.dimension(), Some(2));
        assert_eq!(ParamId::SD.dimension(), None);
    }
}
