//! A concrete assignment of all 19 tuning parameters.

use crate::param::{ParamId, N_PARAMS};

/// A full parameter setting: one value per Table I parameter, stored in
/// [`ParamId`] order. Values use the paper's encoding (booleans are
/// `{1 = off, 2 = on}`, numeric parameters are powers of two, `SD` is
/// `{1, 2, 3}` for x/y/z).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting(pub [u32; N_PARAMS]);

impl Setting {
    /// The all-baseline setting: one thread per point, no optimizations.
    pub fn baseline() -> Self {
        let mut v = [1u32; N_PARAMS];
        v[ParamId::TBx.index()] = 32;
        v[ParamId::TBy.index()] = 4;
        v[ParamId::TBz.index()] = 1;
        Setting(v)
    }

    /// Value of a parameter.
    #[inline]
    pub fn get(&self, p: ParamId) -> u32 {
        self.0[p.index()]
    }

    /// Set a parameter value in place.
    #[inline]
    pub fn set(&mut self, p: ParamId, v: u32) {
        self.0[p.index()] = v;
    }

    /// Copy with one parameter changed.
    #[inline]
    pub fn with(mut self, p: ParamId, v: u32) -> Self {
        self.set(p, v);
        self
    }

    /// Thread block extents `[TBx, TBy, TBz]`.
    #[inline]
    pub fn tb(&self) -> [u32; 3] {
        [self.get(ParamId::TBx), self.get(ParamId::TBy), self.get(ParamId::TBz)]
    }

    /// Total threads per block.
    #[inline]
    pub fn tb_size(&self) -> u32 {
        let [x, y, z] = self.tb();
        x * y * z
    }

    /// Unroll factors `[UFx, UFy, UFz]`.
    #[inline]
    pub fn uf(&self) -> [u32; 3] {
        [self.get(ParamId::UFx), self.get(ParamId::UFy), self.get(ParamId::UFz)]
    }

    /// Cyclic merging factors `[CMx, CMy, CMz]`.
    #[inline]
    pub fn cm(&self) -> [u32; 3] {
        [self.get(ParamId::CMx), self.get(ParamId::CMy), self.get(ParamId::CMz)]
    }

    /// Block merging factors `[BMx, BMy, BMz]`.
    #[inline]
    pub fn bm(&self) -> [u32; 3] {
        [self.get(ParamId::BMx), self.get(ParamId::BMy), self.get(ParamId::BMz)]
    }

    /// Whether shared-memory staging is enabled.
    #[inline]
    pub fn use_shared(&self) -> bool {
        self.get(ParamId::UseShared) == 2
    }

    /// Whether constant memory holds the coefficients.
    #[inline]
    pub fn use_constant(&self) -> bool {
        self.get(ParamId::UseConstant) == 2
    }

    /// Whether streaming is enabled.
    #[inline]
    pub fn use_streaming(&self) -> bool {
        self.get(ParamId::UseStreaming) == 2
    }

    /// Whether retiming is enabled.
    #[inline]
    pub fn use_retiming(&self) -> bool {
        self.get(ParamId::UseRetiming) == 2
    }

    /// Whether prefetching is enabled.
    #[inline]
    pub fn use_prefetching(&self) -> bool {
        self.get(ParamId::UsePrefetching) == 2
    }

    /// Streaming dimension as a 0-based axis (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn sd_axis(&self) -> usize {
        (self.get(ParamId::SD) - 1) as usize
    }

    /// Concurrent-streaming tile extent.
    #[inline]
    pub fn sb(&self) -> u32 {
        self.get(ParamId::SB)
    }

    /// Points computed per thread (merging × unrolling product).
    pub fn points_per_thread(&self) -> u64 {
        self.uf()
            .iter()
            .chain(self.cm().iter())
            .chain(self.bm().iter())
            .map(|&v| v as u64)
            .product()
    }

    /// Feature vector for regression/ML: numeric parameters are
    /// `log2`-transformed so that the coefficient-of-variation comparisons
    /// of §IV-C operate on a continuous scale; boolean and enumeration
    /// parameters are passed through (they already start at 1).
    pub fn features(&self) -> [f64; N_PARAMS] {
        let mut f = [0.0; N_PARAMS];
        for p in ParamId::ALL {
            let v = self.get(p) as f64;
            f[p.index()] = match p.kind() {
                crate::param::ParamKind::Pow2 => v.log2(),
                _ => v,
            };
        }
        f
    }

    /// Normalize dependent parameters to their neutral values so that
    /// logically-identical settings compare equal — the repair a code
    /// generator applies: with streaming off, `SD = 1`, `SB = 1` and
    /// prefetching off; with streaming on, the thread block is flattened
    /// along the stream; merge conflicts resolve in favor of block
    /// merging.
    pub fn canonicalize(&mut self) {
        if !self.use_streaming() {
            self.set(ParamId::SD, 1);
            self.set(ParamId::SB, 1);
            self.set(ParamId::UsePrefetching, 1);
        } else {
            let sd = self.sd_axis();
            let tb_p = [ParamId::TBx, ParamId::TBy, ParamId::TBz][sd];
            self.set(tb_p, 1);
        }
        for d in 0..3 {
            let (bm_p, cm_p, uf_p) = match d {
                0 => (ParamId::BMx, ParamId::CMx, ParamId::UFx),
                1 => (ParamId::BMy, ParamId::CMy, ParamId::UFy),
                _ => (ParamId::BMz, ParamId::CMz, ParamId::UFz),
            };
            if self.get(bm_p) > 1 && self.get(cm_p) > 1 {
                self.set(cm_p, 1);
            }
            // Unrolling cannot exceed the per-thread loop it unrolls.
            let coverage = if self.use_streaming() && self.sd_axis() == d {
                self.sb()
            } else {
                self.get(bm_p) * self.get(cm_p)
            };
            if self.get(uf_p) > coverage {
                // Clamp down to the nearest allowed power of two.
                let mut v = coverage.max(1);
                v = 1 << (31 - v.leading_zeros()); // floor to pow2
                self.set(uf_p, v);
            }
        }
    }

    /// Stable 64-bit hash (FNV-1a over the raw values), used to seed the
    /// deterministic per-setting perturbations of the GPU model.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in &self.0 {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for p in ParamId::ALL {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p.name(), self.get(p))?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Setting {
    type Err = String;

    /// Parse the [`Display`](std::fmt::Display) rendering back into a
    /// setting: whitespace-separated `name=value` pairs. Every parameter
    /// must appear exactly once (the knowledge base round-trips archived
    /// settings through this format, so a silently-defaulted parameter
    /// would corrupt training records).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut values = [0u32; N_PARAMS];
        let mut seen = [false; N_PARAMS];
        for pair in text.split_whitespace() {
            let (name, value) =
                pair.split_once('=').ok_or_else(|| format!("expected name=value, got '{pair}'"))?;
            let p = ParamId::ALL
                .iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| format!("unknown parameter '{name}'"))?;
            if seen[p.index()] {
                return Err(format!("duplicate parameter '{name}'"));
            }
            seen[p.index()] = true;
            values[p.index()] =
                value.parse::<u32>().map_err(|_| format!("bad value '{value}' for '{name}'"))?;
        }
        if let Some(p) = ParamId::ALL.iter().find(|p| !seen[p.index()]) {
            return Err(format!("missing parameter '{}'", p.name()));
        }
        Ok(Setting(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_accessors() {
        let s = Setting::baseline();
        assert_eq!(s.tb(), [32, 4, 1]);
        assert_eq!(s.tb_size(), 128);
        assert!(!s.use_shared());
        assert!(!s.use_streaming());
        assert_eq!(s.points_per_thread(), 1);
    }

    #[test]
    fn with_creates_modified_copy() {
        let s = Setting::baseline();
        let t = s.with(ParamId::UseShared, 2).with(ParamId::UFx, 4);
        assert!(!s.use_shared());
        assert!(t.use_shared());
        assert_eq!(t.uf(), [4, 1, 1]);
        assert_eq!(t.points_per_thread(), 4);
    }

    #[test]
    fn sd_axis_is_zero_based() {
        let s = Setting::baseline().with(ParamId::SD, 3);
        assert_eq!(s.sd_axis(), 2);
    }

    #[test]
    fn features_log2_numeric_passthrough_bool() {
        let s = Setting::baseline().with(ParamId::UFx, 8).with(ParamId::UseShared, 2);
        let f = s.features();
        assert_eq!(f[ParamId::UFx.index()], 3.0);
        assert_eq!(f[ParamId::UseShared.index()], 2.0);
        assert_eq!(f[ParamId::TBx.index()], 5.0); // log2(32)
    }

    #[test]
    fn display_parse_round_trips() {
        let s = Setting::baseline()
            .with(ParamId::UseShared, 2)
            .with(ParamId::UFx, 4)
            .with(ParamId::SD, 2);
        let back: Setting = s.to_string().parse().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!("".parse::<Setting>().unwrap_err().contains("missing parameter"));
        assert!("TB_x=32".parse::<Setting>().unwrap_err().contains("missing parameter"));
        assert!("bogus=1".parse::<Setting>().unwrap_err().contains("unknown parameter"));
        assert!("TB_x".parse::<Setting>().unwrap_err().contains("name=value"));
        assert!("TB_x=huge".parse::<Setting>().unwrap_err().contains("bad value"));
        let doubled = format!("{} TB_x=32", Setting::baseline());
        assert!(doubled.parse::<Setting>().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn stable_hash_distinguishes_settings() {
        let a = Setting::baseline();
        let b = a.with(ParamId::UFy, 2);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), Setting::baseline().stable_hash());
    }
}
