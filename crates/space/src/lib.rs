//! The parameterized optimization space of stencil computation on GPUs.
//!
//! Implements Table I of the paper: 19 tuning parameters covering thread
//! block shape, shared/constant memory usage, (concurrent) streaming, loop
//! unrolling, cyclic and block merging, retiming and prefetching — plus the
//! explicit validity constraints of §IV-B (thread-block size limit,
//! streaming-dimension coupling, merge exclusivity, prefetch requirements).
//!
//! Numeric parameters take power-of-two values, consistent with the paper
//! and the frameworks it builds on; boolean and enumeration parameters are
//! encoded starting from 1 with unit stride so that the `log2` operations
//! of the PMNF models and the coefficient-of-variation grouping are always
//! legal (§IV-B).
//!
//! The *implicit* resource constraints (register spilling, shared-memory
//! overflow) are checked by the GPU model in `cst-gpu-sim`; the
//! `ValidSpace` wrapper there composes both.

pub mod hash;
pub mod param;
pub mod setting;
pub mod space;

pub use hash::{
    setting_map_with_capacity, setting_set_with_capacity, BuildFastHasher, FastHasher, SettingMap,
    SettingSet,
};
pub use param::{ParamId, ParamKind, N_PARAMS};
pub use setting::Setting;
pub use space::{ConstraintViolation, OptSpace};
