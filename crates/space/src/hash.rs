//! Fast hashing for [`Setting`]-keyed containers.
//!
//! A [`Setting`] is 19 `u32`s (76 bytes). The standard library's default
//! SipHash is DoS-resistant but processes that key in many dependent
//! rounds, and it sits on the evaluator's hottest path: every memo
//! lookup, dedup pass and shard probe hashes a full setting. Settings are
//! internal search state — never attacker-chosen map keys — so the
//! hot maps trade SipHash for an Fx-style multiply–rotate–xor chain
//! (one cheap step per written word, ~an order of magnitude faster on
//! this key shape).
//!
//! [`SettingMap`]/[`SettingSet`] are drop-in `HashMap`/`HashSet` aliases
//! using this hasher. Nothing in the engine iterates these containers
//! where order could become observable (results, journals, fixtures), so
//! the hasher swap is invisible outside of speed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx family: odd, high entropy across
/// the upper bits that bucket selection uses after the final multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher: one rotate–xor–multiply per written word.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (stateless, so `Default` suffices).
pub type BuildFastHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed by [`Setting`] (or any internal key) with the fast
/// hasher. Construct with `SettingMap::default()` or
/// [`setting_map_with_capacity`].
pub type SettingMap<V> = HashMap<crate::Setting, V, BuildFastHasher>;

/// `HashSet` of [`Setting`]s with the fast hasher.
pub type SettingSet = HashSet<crate::Setting, BuildFastHasher>;

/// A [`SettingMap`] with preallocated capacity.
pub fn setting_map_with_capacity<V>(cap: usize) -> SettingMap<V> {
    SettingMap::with_capacity_and_hasher(cap, BuildFastHasher::default())
}

/// A [`SettingSet`] with preallocated capacity.
pub fn setting_set_with_capacity(cap: usize) -> SettingSet {
    SettingSet::with_capacity_and_hasher(cap, BuildFastHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Setting;
    use std::hash::BuildHasher;

    #[test]
    fn equal_settings_hash_equal_distinct_settings_differ() {
        let b = BuildFastHasher::default();
        let hash_of = |s: &Setting| b.hash_one(s);
        let s = Setting::baseline();
        assert_eq!(hash_of(&s), hash_of(&s.clone()));
        // Every single-position perturbation must change the hash (the
        // chain folds each word with a rotate, so position matters).
        for i in 0..19 {
            let mut t = s;
            t.0[i] = t.0[i].wrapping_add(1);
            assert_ne!(hash_of(&s), hash_of(&t), "position {i} not mixed in");
        }
        // Swapping values between positions must also change the hash.
        let mut swapped = s;
        swapped.0.swap(0, 1);
        if s.0[0] != s.0[1] {
            assert_ne!(hash_of(&s), hash_of(&swapped));
        }
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: SettingMap<u32> = setting_map_with_capacity(4);
        let mut set: SettingSet = setting_set_with_capacity(4);
        let a = Setting::baseline();
        let c = a.with(crate::ParamId::TBx, 64);
        m.insert(a, 1);
        m.insert(c, 2);
        set.insert(a);
        assert_eq!(m.get(&a), Some(&1));
        assert_eq!(m.get(&c), Some(&2));
        assert!(set.contains(&a) && !set.contains(&c));
    }
}
