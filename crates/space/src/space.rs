//! The optimization space: per-parameter value lists, explicit validity
//! constraints, and sampling/enumeration utilities.

use crate::param::{ParamId, N_PARAMS};
use crate::setting::Setting;
use cst_stencil::StencilSpec;
use rand::seq::SliceRandom;
use rand::Rng;

/// An explicit constraint violation (§IV-B), carried in errors so tuners
/// can report *why* a setting is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// `TBx·TBy·TBz` exceeds the 1024-thread block limit.
    BlockTooLarge(u32),
    /// The block is smaller than one warp: the remaining lanes are pure
    /// waste, so no code generator emits such a configuration.
    BlockSmallerThanWarp(u32),
    /// An unroll factor exceeds the length of the per-thread loop it
    /// unrolls (the merged points along that dimension).
    UnrollExceedsCoverage { dim: usize, uf: u32, coverage: u32 },
    /// A value is not in the parameter's allowed list.
    ValueOutOfRange(ParamId, u32),
    /// `SD`/`SB` differ from their neutral value while streaming is off.
    StreamingParamsWithoutStreaming,
    /// `SB` exceeds the grid extent of the streaming dimension.
    StreamingBlockTooLarge { sb: u32, extent: u32 },
    /// Concurrent streaming with an unroll factor above `SB` along the
    /// streaming dimension.
    UnrollExceedsStreamingBlock { uf: u32, sb: u32 },
    /// The thread block must be flat (extent 1) along the streaming
    /// dimension for 2.5-D streaming.
    BlockNotFlatAlongStream,
    /// Block and cyclic merging both enabled along the same dimension.
    ConflictingMerge(usize),
    /// Prefetching requires streaming (it overlaps next-tile loads).
    PrefetchWithoutStreaming,
    /// Merged/unrolled points per thread exceed the grid extent.
    MergeExceedsExtent(usize),
}

impl std::fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintViolation::BlockTooLarge(n) => {
                write!(f, "thread block of {n} threads exceeds 1024")
            }
            ConstraintViolation::BlockSmallerThanWarp(n) => {
                write!(f, "thread block of {n} threads is smaller than a warp")
            }
            ConstraintViolation::UnrollExceedsCoverage { dim, uf, coverage } => {
                write!(f, "unroll {uf} exceeds the {coverage}-point per-thread loop along dimension {dim}")
            }
            ConstraintViolation::ValueOutOfRange(p, v) => write!(f, "{p} = {v} outside its range"),
            ConstraintViolation::StreamingParamsWithoutStreaming => {
                write!(f, "SD/SB set while streaming is disabled")
            }
            ConstraintViolation::StreamingBlockTooLarge { sb, extent } => {
                write!(f, "SB = {sb} exceeds streaming extent {extent}")
            }
            ConstraintViolation::UnrollExceedsStreamingBlock { uf, sb } => {
                write!(f, "unroll {uf} exceeds concurrent-streaming block {sb}")
            }
            ConstraintViolation::BlockNotFlatAlongStream => {
                write!(f, "thread block not flat along the streaming dimension")
            }
            ConstraintViolation::ConflictingMerge(d) => {
                write!(f, "block and cyclic merging both enabled along dimension {d}")
            }
            ConstraintViolation::PrefetchWithoutStreaming => {
                write!(f, "prefetching requires streaming")
            }
            ConstraintViolation::MergeExceedsExtent(d) => {
                write!(f, "per-thread points exceed the grid extent along dimension {d}")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

/// The tuning space for one stencil: value lists per parameter plus the
/// explicit constraint checker.
#[derive(Debug, Clone)]
pub struct OptSpace {
    grid: [usize; 3],
    values: Vec<Vec<u32>>,
}

fn pow2_up_to(max: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = 1u32;
    while x <= max {
        v.push(x);
        x <<= 1;
    }
    v
}

impl OptSpace {
    /// Build the Table I space for a stencil's grid extents.
    pub fn for_stencil(spec: &StencilSpec) -> Self {
        Self::for_grid(spec.grid)
    }

    /// Build the space for explicit grid extents `[M1, M2, M3]`.
    pub fn for_grid(grid: [usize; 3]) -> Self {
        let m = [grid[0] as u32, grid[1] as u32, grid[2] as u32];
        let max_m = *m.iter().max().unwrap();
        let values = ParamId::ALL
            .iter()
            .map(|&p| match p {
                ParamId::TBx | ParamId::TBy => pow2_up_to(1024),
                ParamId::TBz => pow2_up_to(64),
                ParamId::SD => vec![1, 2, 3],
                ParamId::SB => pow2_up_to(max_m),
                ParamId::UFx | ParamId::CMx | ParamId::BMx => pow2_up_to(m[0]),
                ParamId::UFy | ParamId::CMy | ParamId::BMy => pow2_up_to(m[1]),
                ParamId::UFz | ParamId::CMz | ParamId::BMz => pow2_up_to(m[2]),
                _ => vec![1, 2], // booleans
            })
            .collect();
        OptSpace { grid, values }
    }

    /// Grid extents the space was built for.
    pub fn grid(&self) -> [usize; 3] {
        self.grid
    }

    /// Allowed values of a parameter, ascending.
    pub fn values(&self, p: ParamId) -> &[u32] {
        &self.values[p.index()]
    }

    /// Index of a value in the parameter's list, if present.
    pub fn value_index(&self, p: ParamId, v: u32) -> Option<usize> {
        self.values(p).binary_search(&v).ok()
    }

    /// Size of the unconstrained cartesian space (log10), for reporting.
    /// The paper quotes >10⁸ settings after explicit constraints.
    pub fn log10_unconstrained_size(&self) -> f64 {
        self.values.iter().map(|v| (v.len() as f64).log10()).sum()
    }

    /// Check the explicit constraints of §IV-B.
    pub fn check_explicit(&self, s: &Setting) -> Result<(), ConstraintViolation> {
        for p in ParamId::ALL {
            let v = s.get(p);
            if self.value_index(p, v).is_none() {
                return Err(ConstraintViolation::ValueOutOfRange(p, v));
            }
        }
        if s.tb_size() > 1024 {
            return Err(ConstraintViolation::BlockTooLarge(s.tb_size()));
        }
        if s.tb_size() < 32 {
            return Err(ConstraintViolation::BlockSmallerThanWarp(s.tb_size()));
        }
        let sd = s.sd_axis();
        if !s.use_streaming() {
            if s.get(ParamId::SD) != 1 || s.sb() != 1 {
                return Err(ConstraintViolation::StreamingParamsWithoutStreaming);
            }
            if s.use_prefetching() {
                return Err(ConstraintViolation::PrefetchWithoutStreaming);
            }
        } else {
            let extent = self.grid[sd] as u32;
            if s.sb() > extent {
                return Err(ConstraintViolation::StreamingBlockTooLarge { sb: s.sb(), extent });
            }
            // Concurrent streaming: tiles of SB points are traversed in
            // parallel, so the unroll along SD cannot exceed the tile.
            if s.sb() < extent && s.uf()[sd] > s.sb() {
                return Err(ConstraintViolation::UnrollExceedsStreamingBlock {
                    uf: s.uf()[sd],
                    sb: s.sb(),
                });
            }
            // 2.5-D streaming keeps the block flat along the stream.
            if s.tb()[sd] != 1 {
                return Err(ConstraintViolation::BlockNotFlatAlongStream);
            }
        }
        for d in 0..3 {
            if s.bm()[d] > 1 && s.cm()[d] > 1 {
                return Err(ConstraintViolation::ConflictingMerge(d));
            }
            let per_thread = s.bm()[d] as u64 * s.cm()[d] as u64 * s.uf()[d] as u64;
            if per_thread > self.grid[d] as u64 {
                return Err(ConstraintViolation::MergeExceedsExtent(d));
            }
            // Unrolling applies to the per-thread loop: along the streaming
            // dimension that loop has SB trips (checked above); elsewhere
            // it has `bm·cm` trips.
            if !(s.use_streaming() && d == sd) {
                let coverage = s.bm()[d] * s.cm()[d];
                if s.uf()[d] > coverage {
                    return Err(ConstraintViolation::UnrollExceedsCoverage {
                        dim: d,
                        uf: s.uf()[d],
                        coverage,
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the setting passes all explicit constraints.
    pub fn is_explicit_valid(&self, s: &Setting) -> bool {
        self.check_explicit(s).is_ok()
    }

    /// Draw one uniformly random parameter assignment (not necessarily
    /// valid).
    pub fn random_raw(&self, rng: &mut impl Rng) -> Setting {
        let mut v = [1u32; N_PARAMS];
        for p in ParamId::ALL {
            v[p.index()] = *self.values(p).choose(rng).unwrap();
        }
        Setting(v)
    }

    /// Draw one explicitly-valid setting by canonicalizing a raw draw and
    /// rejection-sampling the rest.
    pub fn random_explicit_valid(&self, rng: &mut impl Rng) -> Setting {
        loop {
            let mut s = self.random_raw(rng);
            self.canonicalize(&mut s);
            if self.is_explicit_valid(&s) {
                return s;
            }
        }
    }

    /// Normalize dependent parameters (delegates to
    /// [`Setting::canonicalize`]; kept as a space method for call-site
    /// symmetry with the validity checks).
    pub fn canonicalize(&self, s: &mut Setting) {
        s.canonicalize();
    }

    /// Enumerate all value combinations of a parameter subset that are
    /// explicitly valid when substituted into `base`, up to `limit`
    /// combinations (in lexicographic order of value indices). This is the
    /// per-group combination space of the iterative search (§IV-E).
    pub fn enumerate_group(
        &self,
        base: &Setting,
        params: &[ParamId],
        limit: usize,
    ) -> Vec<Vec<u32>> {
        let step_budget = limit.saturating_mul(64).max(200_000);
        let mut steps = 0usize;
        let mut out = Vec::new();
        let lists: Vec<&[u32]> = params.iter().map(|&p| self.values(p)).collect();
        let mut idx = vec![0usize; params.len()];
        'outer: loop {
            steps += 1;
            if steps > step_budget {
                break;
            }
            let combo: Vec<u32> = idx.iter().zip(&lists).map(|(&i, l)| l[i]).collect();
            let mut s = *base;
            for (&p, &v) in params.iter().zip(&combo) {
                s.set(p, v);
            }
            if self.is_explicit_valid(&s) {
                out.push(combo);
                if out.len() >= limit {
                    break;
                }
            }
            // Odometer increment.
            let mut d = params.len();
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < lists[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// Total combinations of a parameter subset ignoring constraints.
    pub fn group_combo_count(&self, params: &[ParamId]) -> usize {
        params.iter().map(|&p| self.values(p).len()).product()
    }

    /// Like [`OptSpace::enumerate_group`], but a combination is feasible
    /// when the *canonicalized* substitution is valid. Strict validity
    /// against a base setting couples the group to the base's topology —
    /// e.g. with a streaming base, `useStreaming = 1` alone is invalid
    /// because `SD`/`SB` stay set — so a tuner enumerating strictly can
    /// never leave the base's streaming configuration. Canonicalization
    /// repairs the dependent parameters exactly as a code generator would.
    pub fn enumerate_group_repaired(
        &self,
        base: &Setting,
        params: &[ParamId],
        limit: usize,
    ) -> Vec<Vec<u32>> {
        // Hard step budget: a large group whose feasible combinations are
        // rare in lexicographic order must not turn enumeration into an
        // unbounded scan of the cartesian space.
        let step_budget = limit.saturating_mul(64).max(200_000);
        let mut steps = 0usize;
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
        let lists: Vec<&[u32]> = params.iter().map(|&p| self.values(p)).collect();
        let mut idx = vec![0usize; params.len()];
        'outer: loop {
            steps += 1;
            if steps > step_budget {
                break;
            }
            let combo: Vec<u32> = idx.iter().zip(&lists).map(|(&i, l)| l[i]).collect();
            let mut s = *base;
            for (&p, &v) in params.iter().zip(&combo) {
                s.set(p, v);
            }
            self.canonicalize(&mut s);
            if self.is_explicit_valid(&s) {
                // Keep the *raw* combination: canonicalization against this
                // base may flatten values (e.g. force TB to 1 along the
                // base's streaming dimension) that become meaningful again
                // when another group later moves the topology. Decoding
                // re-canonicalizes in the final context.
                if seen.insert(combo.clone()) {
                    out.push(combo);
                    if out.len() >= limit {
                        break;
                    }
                }
            }
            let mut d = params.len();
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < lists[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space512() -> OptSpace {
        OptSpace::for_grid([512, 512, 512])
    }

    #[test]
    fn value_lists_match_table_i() {
        let sp = space512();
        assert_eq!(sp.values(ParamId::TBx).len(), 11); // 1..1024
        assert_eq!(sp.values(ParamId::TBz).len(), 7); // 1..64
        assert_eq!(sp.values(ParamId::SD), &[1, 2, 3]);
        assert_eq!(sp.values(ParamId::UFx).len(), 10); // 1..512
        assert_eq!(sp.values(ParamId::UseShared), &[1, 2]);
        assert_eq!(*sp.values(ParamId::SB).last().unwrap(), 512);
    }

    #[test]
    fn space_is_large_as_paper_claims() {
        // >100M settings even after constraints; unconstrained must be ≥ 1e8.
        assert!(space512().log10_unconstrained_size() > 8.0);
    }

    #[test]
    fn baseline_is_valid() {
        let sp = space512();
        assert!(sp.is_explicit_valid(&Setting::baseline()));
    }

    #[test]
    fn block_size_limit_enforced() {
        let sp = space512();
        let s = Setting::baseline()
            .with(ParamId::TBx, 1024)
            .with(ParamId::TBy, 2)
            .with(ParamId::TBz, 1);
        assert_eq!(sp.check_explicit(&s), Err(ConstraintViolation::BlockTooLarge(2048)));
    }

    #[test]
    fn streaming_params_need_streaming() {
        let sp = space512();
        let s = Setting::baseline().with(ParamId::SB, 8);
        assert_eq!(
            sp.check_explicit(&s),
            Err(ConstraintViolation::StreamingParamsWithoutStreaming)
        );
    }

    #[test]
    fn concurrent_streaming_bounds_unroll() {
        let sp = space512();
        let s = Setting::baseline()
            .with(ParamId::UseStreaming, 2)
            .with(ParamId::SD, 3)
            .with(ParamId::TBz, 1)
            .with(ParamId::SB, 4)
            .with(ParamId::UFz, 8);
        assert_eq!(
            sp.check_explicit(&s),
            Err(ConstraintViolation::UnrollExceedsStreamingBlock { uf: 8, sb: 4 })
        );
        // Full-extent SB (plain streaming) lifts the bound.
        let s2 = s.with(ParamId::SB, 512).with(ParamId::UFz, 8);
        assert!(sp.is_explicit_valid(&s2), "{:?}", sp.check_explicit(&s2));
    }

    #[test]
    fn block_flat_along_stream() {
        let sp = space512();
        let s = Setting::baseline()
            .with(ParamId::UseStreaming, 2)
            .with(ParamId::SD, 3)
            .with(ParamId::SB, 8)
            .with(ParamId::TBz, 2);
        assert_eq!(sp.check_explicit(&s), Err(ConstraintViolation::BlockNotFlatAlongStream));
    }

    #[test]
    fn merge_conflict_detected() {
        let sp = space512();
        let s = Setting::baseline().with(ParamId::BMy, 2).with(ParamId::CMy, 4);
        assert_eq!(sp.check_explicit(&s), Err(ConstraintViolation::ConflictingMerge(1)));
    }

    #[test]
    fn prefetch_requires_streaming() {
        let sp = space512();
        let s = Setting::baseline().with(ParamId::UsePrefetching, 2);
        assert_eq!(sp.check_explicit(&s), Err(ConstraintViolation::PrefetchWithoutStreaming));
    }

    #[test]
    fn merge_product_bounded_by_extent() {
        let sp = OptSpace::for_grid([64, 64, 64]);
        let s = Setting::baseline().with(ParamId::BMy, 32).with(ParamId::UFy, 4);
        assert_eq!(sp.check_explicit(&s), Err(ConstraintViolation::MergeExceedsExtent(1)));
    }

    #[test]
    fn random_explicit_valid_always_valid() {
        let sp = space512();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let s = sp.random_explicit_valid(&mut rng);
            assert!(sp.is_explicit_valid(&s), "{s}");
        }
    }

    #[test]
    fn random_valid_settings_are_diverse() {
        let sp = space512();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(sp.random_explicit_valid(&mut rng));
        }
        assert!(seen.len() > 90, "only {} distinct settings", seen.len());
    }

    #[test]
    fn canonicalize_is_idempotent_and_validating() {
        let sp = space512();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut s = sp.random_raw(&mut rng);
            sp.canonicalize(&mut s);
            let mut t = s;
            sp.canonicalize(&mut t);
            assert_eq!(s, t, "canonicalize not idempotent");
        }
    }

    #[test]
    fn enumerate_group_respects_constraints_and_limit() {
        let sp = space512();
        let base = Setting::baseline();
        let combos = sp.enumerate_group(&base, &[ParamId::TBx, ParamId::TBy], usize::MAX);
        // All TBx×TBy with 32 ≤ product ≤ 1024 (TBz = 1): 51 combinations.
        assert_eq!(combos.len(), 51);
        for c in &combos {
            assert!((32..=1024).contains(&(c[0] * c[1])));
        }
        let limited = sp.enumerate_group(&base, &[ParamId::TBx, ParamId::TBy], 10);
        assert_eq!(limited.len(), 10);
    }

    #[test]
    fn enumerate_group_repaired_unlocks_topology_changes() {
        let sp = space512();
        // Streaming-along-y base: strict enumeration of [TBy] yields only
        // {1}; repaired enumeration keeps all raw values because another
        // group may later move the stream.
        let base = Setting::baseline()
            .with(ParamId::UseStreaming, 2)
            .with(ParamId::SD, 2)
            .with(ParamId::TBy, 1)
            .with(ParamId::SB, 8);
        let strict = sp.enumerate_group(&base, &[ParamId::TBy], usize::MAX);
        assert_eq!(strict.len(), 1);
        let repaired = sp.enumerate_group_repaired(&base, &[ParamId::TBy], usize::MAX);
        assert!(repaired.len() > 1, "{repaired:?}");
        // And turning streaming off alone is representable.
        let off = sp.enumerate_group_repaired(&base, &[ParamId::UseStreaming], usize::MAX);
        assert!(off.iter().any(|c| c[0] == 1), "{off:?}");
    }

    #[test]
    fn repaired_combos_decode_validly_in_base_context() {
        let sp = space512();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let base = sp.random_explicit_valid(&mut rng);
            let group = [ParamId::UseStreaming, ParamId::SD, ParamId::SB];
            for combo in sp.enumerate_group_repaired(&base, &group, 200) {
                let mut s = base;
                for (&p, &v) in group.iter().zip(&combo) {
                    s.set(p, v);
                }
                s.canonicalize();
                assert!(sp.is_explicit_valid(&s), "{s} from {combo:?}");
            }
        }
    }

    #[test]
    fn enumerate_group_sees_cross_constraints_from_base() {
        let sp = space512();
        // Base has streaming on along z with SB = 4: UFz choices are capped.
        let base = Setting::baseline()
            .with(ParamId::UseStreaming, 2)
            .with(ParamId::SD, 3)
            .with(ParamId::TBz, 1)
            .with(ParamId::SB, 4);
        let combos = sp.enumerate_group(&base, &[ParamId::UFz], usize::MAX);
        let vals: Vec<u32> = combos.into_iter().map(|c| c[0]).collect();
        assert_eq!(vals, vec![1, 2, 4]);
    }
}
