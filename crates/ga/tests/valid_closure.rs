//! Validity closure of the genetic operators over the real tuning space.
//!
//! The search pipeline decodes GA genes into [`Setting`]s and guards every
//! measurement with the composed validity check of `valid.rs` (explicit
//! constraints + simulated resources). These properties pin the contract
//! that guard relies on:
//!
//! 1. **Range closure** — crossover and mutation of in-range parents only
//!    ever breed in-range offspring, so gene decoding can never index out
//!    of a parameter's value list.
//! 2. **Guarded evaluation** — offspring of fully *valid* parents are
//!    either valid or rejected by the guard; an invalid offspring is never
//!    evaluated (the simulator is never asked to run a setting the
//!    validity check refused).

use cst_ga::{Genome, Individual};
use cst_gpu_sim::{GpuArch, GpuSim, ValidSpace};
use cst_space::{OptSpace, Setting};
use cst_stencil::suite;
use cst_testkit::{decode_genes, genome_cards, seeded_rng, PropRunner};
use proptest::Strategy;
use rand::Rng;

fn tuning_genome(space: &OptSpace) -> Genome {
    Genome::new(genome_cards(space))
}

fn valid_space(name: &str) -> ValidSpace {
    let spec = suite::spec_by_name(name).unwrap();
    let space = OptSpace::for_stencil(&spec);
    ValidSpace::new(space, GpuSim::new(spec, GpuArch::a100()))
}

/// Encode a concrete setting as full-space genes (value-list indices).
fn encode(space: &OptSpace, s: &Setting) -> Individual {
    let genes = cst_space::ParamId::ALL
        .iter()
        .map(|&p| space.value_index(p, s.get(p)).expect("setting off the value lattice") as u32)
        .collect();
    Individual::new(genes)
}

/// Strategy yielding mutation rates across the interesting spectrum,
/// including the aggressive tail where out-of-range redraws trigger.
fn rates() -> impl Strategy<Value = f64> {
    0.0f64..0.6
}

#[test]
fn crossover_and_mutation_are_closed_over_gene_ranges() {
    let valid = valid_space("j3d7pt");
    let space = valid.space();
    let genome = tuning_genome(space);
    let mut rng = seeded_rng(11);
    PropRunner::new("range-closure").cases(200).run(&rates(), |rate| {
        let a = genome.random(&mut rng);
        let b = genome.random(&mut rng);
        let mut child = genome.crossover(&a, &b, &mut rng);
        if !genome.in_range(&child) {
            return Err(format!("crossover bred out-of-range genes: {:?}", child.genes));
        }
        genome.mutate(&mut child, rate, &mut rng);
        if !genome.in_range(&child) {
            return Err(format!("mutation (rate {rate}) left range: {:?}", child.genes));
        }
        // In-range genes must decode without panicking and land on the
        // explicit value lattice.
        let s = decode_genes(space, &child.genes);
        for p in cst_space::ParamId::ALL {
            if !space.values(p).contains(&s.get(p)) {
                return Err(format!("decoded {p:?} = {} off the lattice", s.get(p)));
            }
        }
        Ok(())
    });
}

#[test]
fn offspring_of_valid_parents_are_valid_or_rejected_never_evaluated() {
    let valid = valid_space("j3d7pt");
    let space = valid.space();
    let genome = tuning_genome(space);
    let mut rng = seeded_rng(23);

    // The guard of `search.rs`'s `measure!`, instrumented: the simulated
    // evaluation only happens behind `is_valid`, and we count both arms.
    let mut evaluated = 0u32;
    let mut rejected = 0u32;
    let mut guarded_measure = |s: &Setting| -> f64 {
        if valid.is_valid(s) {
            evaluated += 1;
            debug_assert!(valid.check(s).is_ok());
            valid.sim().evaluate_full(s).time_ms()
        } else {
            rejected += 1;
            f64::INFINITY
        }
    };

    for _ in 0..300 {
        // Fully valid parents, encoded onto the genome.
        let pa = valid.random_valid(&mut rng);
        let pb = valid.random_valid(&mut rng);
        let a = encode(space, &pa);
        let b = encode(space, &pb);
        let mut child = genome.crossover(&a, &b, &mut rng);
        genome.mutate(&mut child, rng.gen_range(0.0..0.3), &mut rng);
        assert!(genome.in_range(&child), "closure violated: {:?}", child.genes);
        let s = decode_genes(space, &child.genes);
        let t = guarded_measure(&s);
        // The arms are exclusive and exhaustive: a valid offspring is
        // measured to a real time, an invalid one is rejected with the
        // penalty value, and nothing else can happen.
        if valid.is_valid(&s) {
            assert!(t.is_finite() && t > 0.0, "valid offspring must measure: {s:?}");
        } else {
            assert_eq!(t, f64::INFINITY, "invalid offspring must be rejected: {s:?}");
        }
    }
    assert_eq!(evaluated + rejected, 300);
    assert!(evaluated > 0, "valid parents should breed mostly valid offspring");
    // Crossover of valid parents CAN breed invalid offspring (validity is
    // not convex — that is exactly why the guard exists). If this never
    // triggers, the property is vacuous; with 300 mutated children it
    // reliably does.
    assert!(rejected > 0, "expected some invalid offspring to exercise the rejection arm");
}
