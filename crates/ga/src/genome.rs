//! Binary-encoded genomes over re-indexed value ranges.

use rand::Rng;

/// One candidate solution: a vector of gene values, `genes[d] <
/// cards[d]`, with its evaluated fitness (higher is better;
/// `f64::NEG_INFINITY` before evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Gene values (indices into per-dimension value sets).
    pub genes: Vec<u32>,
    /// Fitness; maximized by the GA.
    pub fitness: f64,
}

impl Individual {
    /// An unevaluated individual.
    pub fn new(genes: Vec<u32>) -> Self {
        Individual { genes, fitness: f64::NEG_INFINITY }
    }
}

/// The genome layout: cardinality (number of valid values) per gene, plus
/// the derived bit width used for mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    cards: Vec<u32>,
    bits: Vec<u32>,
}

impl Genome {
    /// Build a layout from per-gene cardinalities.
    ///
    /// # Panics
    /// Panics if any cardinality is zero or the list is empty.
    pub fn new(cards: Vec<u32>) -> Self {
        assert!(!cards.is_empty(), "a genome needs at least one gene");
        assert!(cards.iter().all(|&c| c > 0), "gene cardinality must be positive");
        let bits =
            cards.iter().map(|&c| 32 - (c - 1).leading_zeros().min(31)).map(|b| b.max(1)).collect();
        Genome { cards, bits }
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.cards.len()
    }

    /// Whether the genome is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.cards.is_empty()
    }

    /// Cardinality of gene `d`.
    pub fn card(&self, d: usize) -> u32 {
        self.cards[d]
    }

    /// Total number of distinct genomes (saturating).
    pub fn space_size(&self) -> u64 {
        self.cards.iter().fold(1u64, |acc, &c| acc.saturating_mul(c as u64))
    }

    /// Draw a uniform random individual.
    pub fn random(&self, rng: &mut impl Rng) -> Individual {
        Individual::new(self.cards.iter().map(|&c| rng.gen_range(0..c)).collect())
    }

    /// Uniform gene-level crossover: each gene copied from a random parent.
    pub fn crossover(&self, a: &Individual, b: &Individual, rng: &mut impl Rng) -> Individual {
        let genes = a
            .genes
            .iter()
            .zip(&b.genes)
            .map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb })
            .collect();
        Individual::new(genes)
    }

    /// Bit-flip mutation: every bit of every gene flips with probability
    /// `rate`; a mutated value outside the gene's range is re-drawn
    /// uniformly (the paper's re-indexing keeps ranges compact precisely to
    /// make this rare).
    pub fn mutate(&self, ind: &mut Individual, rate: f64, rng: &mut impl Rng) {
        for (d, g) in ind.genes.iter_mut().enumerate() {
            let mut v = *g;
            let mut changed = false;
            for bit in 0..self.bits[d] {
                if rng.gen_bool(rate) {
                    v ^= 1 << bit;
                    changed = true;
                }
            }
            if changed {
                if v >= self.cards[d] {
                    v = rng.gen_range(0..self.cards[d]);
                }
                *g = v;
                ind.fitness = f64::NEG_INFINITY;
            }
        }
    }

    /// Validate an individual against the layout.
    pub fn in_range(&self, ind: &Individual) -> bool {
        ind.genes.len() == self.cards.len()
            && ind.genes.iter().zip(&self.cards).all(|(&g, &c)| g < c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_widths_cover_ranges() {
        let g = Genome::new(vec![1, 2, 3, 8, 9, 1024]);
        // card 1 → at least 1 bit; card 3 → 2 bits; card 9 → 4 bits.
        assert_eq!(g.bits, vec![1, 1, 2, 3, 4, 10]);
    }

    #[test]
    fn random_individuals_in_range() {
        let g = Genome::new(vec![5, 1, 17]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(g.in_range(&g.random(&mut rng)));
        }
    }

    #[test]
    fn crossover_takes_genes_from_parents() {
        let g = Genome::new(vec![10; 6]);
        let a = Individual::new(vec![0; 6]);
        let b = Individual::new(vec![9; 6]);
        let mut rng = StdRng::seed_from_u64(2);
        let c = g.crossover(&a, &b, &mut rng);
        assert!(c.genes.iter().all(|&v| v == 0 || v == 9));
        // With 6 genes the child almost surely mixes both parents.
        let mixed = (0..50).any(|_| {
            let c = g.crossover(&a, &b, &mut rng);
            c.genes.contains(&0) && c.genes.contains(&9)
        });
        assert!(mixed);
    }

    #[test]
    fn mutation_keeps_individuals_valid_and_resets_fitness() {
        let g = Genome::new(vec![3, 5, 6]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut ind = g.random(&mut rng);
            ind.fitness = 1.0;
            g.mutate(&mut ind, 0.5, &mut rng);
            assert!(g.in_range(&ind));
        }
    }

    #[test]
    fn zero_rate_never_mutates() {
        let g = Genome::new(vec![8, 8]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut ind = Individual::new(vec![3, 5]);
        ind.fitness = 2.0;
        g.mutate(&mut ind, 0.0, &mut rng);
        assert_eq!(ind.genes, vec![3, 5]);
        assert_eq!(ind.fitness, 2.0);
    }

    #[test]
    fn space_size_saturates() {
        let g = Genome::new(vec![u32::MAX; 4]);
        assert_eq!(g.space_size(), u64::MAX);
        assert_eq!(Genome::new(vec![4, 4]).space_size(), 16);
    }

    #[test]
    #[should_panic(expected = "cardinality must be positive")]
    fn zero_card_panics() {
        Genome::new(vec![4, 0]);
    }
}
