//! The island engine: neighborhood breeding, ring migration, two drivers.

use crate::genome::{Genome, Individual};
use cst_telemetry::{event, Counter, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Genetic algorithm options, defaulting to the paper's §V-A values:
/// 2 sub-populations of 16 individuals, crossover 0.8, mutation 0.005.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Number of islands (sub-populations).
    pub n_islands: usize,
    /// Individuals per island.
    pub pop_per_island: usize,
    /// Probability a child is bred by crossover (otherwise the fitter
    /// parent is cloned).
    pub crossover_rate: f64,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Generations between ring migrations.
    pub migration_interval: u32,
    /// Individuals exchanged per migration per island.
    pub migration_count: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            n_islands: 2,
            pop_per_island: 16,
            crossover_rate: 0.8,
            mutation_rate: 0.005,
            migration_interval: 2,
            migration_count: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Island {
    pop: Vec<Individual>,
    rng: StdRng,
}

/// Stepping GA state: the caller drives generations and supplies fitness.
#[derive(Debug, Clone)]
pub struct GaState {
    genome: Genome,
    cfg: GaConfig,
    islands: Vec<Island>,
    generation: u32,
    evaluations: u64,
    best: Option<Individual>,
    frozen: Vec<Option<u32>>,
    tel: Telemetry,
}

/// Result summary of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaSummary {
    /// Best individual found.
    pub best: Individual,
    /// Generations executed.
    pub generations: u32,
    /// Fitness evaluations performed.
    pub evaluations: u64,
}

impl GaState {
    /// Initialize random islands (individuals unevaluated until the first
    /// [`GaState::step`]).
    pub fn new(genome: Genome, cfg: GaConfig, seed: u64) -> Self {
        assert!(cfg.n_islands >= 1 && cfg.pop_per_island >= 4, "population too small");
        let mut seeder = StdRng::seed_from_u64(seed);
        let islands = (0..cfg.n_islands)
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(seeder.gen());
                let pop = (0..cfg.pop_per_island).map(|_| genome.random(&mut rng)).collect();
                Island { pop, rng }
            })
            .collect();
        let frozen = vec![None; genome.len()];
        GaState {
            genome,
            cfg,
            islands,
            generation: 0,
            evaluations: 0,
            best: None,
            frozen,
            tel: Telemetry::noop(),
        }
    }

    /// Attach a telemetry handle: each [`GaState::step_batched`] then
    /// emits a `ga_gen` record with the per-island best-fitness
    /// trajectory. Telemetry-carrying callers report fitness as negated
    /// milliseconds, so the record's `best_ms`/`island_best` fields are
    /// the negated fitnesses. The default is the noop handle.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// Freeze gene `d` to `value` across the whole population: every
    /// individual's gene is overwritten, and subsequent mutation leaves it
    /// untouched. Used by csTuner's iterative per-group tuning (§IV-E):
    /// once a parameter group's CV(top-n) approximation condition holds,
    /// its genes are pinned and the search continues on the rest.
    ///
    /// # Panics
    /// Panics if `value` is out of range for the gene.
    pub fn freeze(&mut self, d: usize, value: u32) {
        assert!(value < self.genome.card(d), "frozen value out of range");
        self.frozen[d] = Some(value);
        for isl in &mut self.islands {
            for ind in &mut isl.pop {
                if ind.genes[d] != value {
                    ind.genes[d] = value;
                    ind.fitness = f64::NEG_INFINITY;
                }
            }
        }
    }

    /// Which genes are frozen, by index.
    pub fn frozen(&self) -> &[Option<u32>] {
        &self.frozen
    }

    /// Seed the initial population with known genomes (e.g. a baseline
    /// configuration and valid random samples), distributed round-robin
    /// across islands. Call before the first [`GaState::step`].
    ///
    /// # Panics
    /// Panics if any genome is out of range for the layout.
    pub fn seed_with(&mut self, genomes: &[Vec<u32>]) {
        let n_islands = self.islands.len();
        let pop = self.cfg.pop_per_island;
        for (i, genes) in genomes.iter().take(n_islands * pop).enumerate() {
            let ind = Individual::new(genes.clone());
            assert!(self.genome.in_range(&ind), "seed genome out of range");
            self.islands[i % n_islands].pop[i / n_islands] = ind;
        }
    }

    /// The genome layout.
    pub fn genome(&self) -> &Genome {
        &self.genome
    }

    /// Generations stepped so far.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Total fitness evaluations requested so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Best individual seen so far (after at least one step).
    pub fn best(&self) -> Option<&Individual> {
        self.best.as_ref()
    }

    /// All current individuals across islands.
    pub fn population(&self) -> impl Iterator<Item = &Individual> {
        self.islands.iter().flat_map(|i| i.pop.iter())
    }

    /// Fitnesses of the top `n` current individuals, descending.
    pub fn top_n_fitness(&self, n: usize) -> Vec<f64> {
        let mut f: Vec<f64> =
            self.population().map(|i| i.fitness).filter(|f| f.is_finite()).collect();
        f.sort_by(|a, b| b.partial_cmp(a).unwrap());
        f.truncate(n);
        f
    }

    /// Advance one generation: evaluate any unevaluated individuals, breed
    /// the next population island by island, then migrate around the ring
    /// every `migration_interval` generations.
    ///
    /// `eval` maps genes to fitness (higher is better; return
    /// `f64::NEG_INFINITY` for infeasible candidates).
    pub fn step(&mut self, eval: &mut impl FnMut(&[u32]) -> f64) {
        self.step_batched(&mut |batch: &[Vec<u32>]| batch.iter().map(|g| eval(g)).collect());
    }

    /// [`GaState::step`] with batched fitness evaluation: both evaluation
    /// phases hand the whole pending population to `eval_batch` at once,
    /// which may evaluate it concurrently as long as the returned vector
    /// lines up index-for-index with the input (island-major order, the
    /// same order the serial driver would have used). Breeding, best
    /// tracking and migration are unchanged, so a serial `eval_batch`
    /// closure reproduces [`GaState::step`] bit-for-bit.
    ///
    /// The tuner's driver wires `eval_batch` to the evaluator's batch path
    /// (`Evaluator::evaluate_batch` in `cstuner-core`), which hands the
    /// whole generation to the simulator's structure-of-arrays
    /// `evaluate_population` sweep before committing results serially — so
    /// batching here is what unlocks the columnar hot path.
    pub fn step_batched(&mut self, eval_batch: &mut impl FnMut(&[Vec<u32>]) -> Vec<f64>) {
        self.eval_pending(eval_batch);
        self.breed();
        // Evaluate the new generation immediately so callers observe a
        // consistent population after each step.
        self.eval_pending(eval_batch);
        self.finish_generation();
    }

    /// Genes of every individual currently lacking a finite fitness, in
    /// canonical island-major order — exactly the batch the next
    /// [`GaState::assign_pending`] call must cover. Together with
    /// [`GaState::breed_generation`] and [`GaState::finish_generation`]
    /// this is the resumable (ask/tell-style) form of
    /// [`GaState::step_batched`]: one step is `pending → assign → breed →
    /// pending → assign → finish`, and an external driver interleaving
    /// its own bookkeeping between those calls reproduces the closed-loop
    /// step bit for bit.
    pub fn pending_genes(&self) -> Vec<Vec<u32>> {
        self.islands
            .iter()
            .flat_map(|isl| isl.pop.iter())
            .filter(|ind| !ind.fitness.is_finite())
            .map(|ind| ind.genes.clone())
            .collect()
    }

    /// Assign fitnesses to the pending individuals (island-major order,
    /// lining up with [`GaState::pending_genes`]) and refresh the
    /// best-so-far over the *whole* population using the serial driver's
    /// first-encounter tie rule. Call with an empty slice when there is
    /// nothing pending — the best-so-far refresh still runs, as it does
    /// on the closed-loop path.
    ///
    /// # Panics
    /// Panics when `fits` does not line up with the pending batch.
    pub fn assign_pending(&mut self, fits: &[f64]) {
        let mut fit_iter = fits.iter().copied();
        for isl in &mut self.islands {
            for ind in &mut isl.pop {
                if !ind.fitness.is_finite() {
                    ind.fitness = fit_iter.next().expect("batch evaluator arity mismatch");
                    self.evaluations += 1;
                }
                match &self.best {
                    Some(b) if b.fitness >= ind.fitness => {}
                    _ => self.best = Some(ind.clone()),
                }
            }
        }
        assert!(fit_iter.next().is_none(), "batch evaluator arity mismatch");
    }

    /// Breed the next generation (the public split-phase form of the
    /// middle of [`GaState::step_batched`]). New children carry
    /// `NEG_INFINITY` fitness, so they appear in the next
    /// [`GaState::pending_genes`] batch.
    pub fn breed_generation(&mut self) {
        self.breed();
    }

    /// Close out a generation after its post-breed fitness assignment:
    /// bump the generation counter, run ring migration on schedule, and
    /// emit the `ga_gen` telemetry record.
    pub fn finish_generation(&mut self) {
        self.generation += 1;
        // Migrate best individuals around the single ring.
        if self.cfg.n_islands > 1 && self.generation.is_multiple_of(self.cfg.migration_interval) {
            self.migrate();
        }
        self.tel.add(Counter::GaGenerations, 1);
        if self.tel.enabled() {
            let island_best: Vec<f64> = self
                .islands
                .iter()
                .map(|isl| -isl.pop.iter().map(|i| i.fitness).fold(f64::NEG_INFINITY, f64::max))
                .collect();
            let best_ms = self.best.as_ref().map(|b| -b.fitness).unwrap_or(f64::NAN);
            event!(
                self.tel,
                "ga_gen",
                gen = self.generation,
                evaluations = self.evaluations,
                best_ms = best_ms,
                island_best = &island_best
            );
        }
    }

    /// Evaluate every individual without finite fitness (one batch call,
    /// island-major order) and refresh the best-so-far over the whole
    /// population using the serial driver's first-encounter tie rule.
    fn eval_pending(&mut self, eval_batch: &mut impl FnMut(&[Vec<u32>]) -> Vec<f64>) {
        let pending = self.pending_genes();
        let fits = if pending.is_empty() { Vec::new() } else { eval_batch(&pending) };
        assert_eq!(fits.len(), pending.len(), "batch evaluator arity mismatch");
        self.assign_pending(&fits);
    }

    /// Breed the next population island by island: elitism, neighborhood
    /// parent selection, crossover-or-clone, mutation, frozen-gene pinning.
    fn breed(&mut self) {
        let cfg = self.cfg;
        let frozen = self.frozen.clone();
        for isl in &mut self.islands {
            let mut next = Vec::with_capacity(isl.pop.len());
            // Elitism: carry the island's best forward unchanged.
            let elite = isl
                .pop
                .iter()
                .max_by(|a, b| a.fitness.partial_cmp(&b.fitness).unwrap())
                .cloned()
                .expect("population non-empty");
            next.push(elite);
            while next.len() < isl.pop.len() {
                let slot = next.len();
                let (pa, pb) = select_parents(&isl.pop, slot, &mut isl.rng);
                let mut child = if isl.rng.gen_bool(cfg.crossover_rate) {
                    self.genome.crossover(&isl.pop[pa], &isl.pop[pb], &mut isl.rng)
                } else {
                    let better = if isl.pop[pa].fitness >= isl.pop[pb].fitness { pa } else { pb };
                    Individual::new(isl.pop[better].genes.clone())
                };
                self.genome.mutate(&mut child, cfg.mutation_rate, &mut isl.rng);
                for (d, f) in frozen.iter().enumerate() {
                    if let Some(v) = f {
                        child.genes[d] = *v;
                    }
                }
                child.fitness = f64::NEG_INFINITY;
                next.push(child);
            }
            isl.pop = next;
        }
    }

    fn migrate(&mut self) {
        let n = self.islands.len();
        let count = self.cfg.migration_count;
        // Collect emigrants first so migration is simultaneous.
        let emigrants: Vec<Vec<Individual>> = self
            .islands
            .iter()
            .map(|isl| {
                let mut sorted: Vec<&Individual> = isl.pop.iter().collect();
                sorted.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).unwrap());
                sorted.into_iter().take(count).cloned().collect()
            })
            .collect();
        for (k, movers) in emigrants.into_iter().enumerate() {
            let dst = (k + 1) % n;
            for m in movers {
                // Replace the destination's worst individual.
                let worst = self.islands[dst]
                    .pop
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.fitness.partial_cmp(&b.fitness).unwrap())
                    .map(|(i, _)| i)
                    .expect("population non-empty");
                if self.islands[dst].pop[worst].fitness < m.fitness {
                    self.islands[dst].pop[worst] = m;
                }
            }
        }
    }
}

/// Fitness-biased parent selection among the slot's four ring neighbors
/// (±1, ±2), per §IV-E: higher fitness means higher selection chance.
fn select_parents(pop: &[Individual], slot: usize, rng: &mut impl Rng) -> (usize, usize) {
    let n = pop.len();
    let hood = [(slot + n - 2) % n, (slot + n - 1) % n, (slot + 1) % n, (slot + 2) % n];
    let pick = |rng: &mut dyn rand::RngCore, exclude: Option<usize>| -> usize {
        // Weights shifted to be positive; NEG_INFINITY (unevaluated or
        // infeasible) gets epsilon weight.
        let min_fit = hood
            .iter()
            .map(|&i| pop[i].fitness)
            .filter(|f| f.is_finite())
            .fold(f64::INFINITY, f64::min);
        let base = if min_fit.is_finite() { min_fit } else { 0.0 };
        let weights: Vec<f64> = hood
            .iter()
            .map(|&i| {
                if Some(i) == exclude {
                    0.0
                } else if pop[i].fitness.is_finite() {
                    (pop[i].fitness - base).max(0.0) + 1e-6
                } else {
                    1e-9
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut t = rng.gen_range(0.0..total.max(1e-12));
        for (k, &w) in weights.iter().enumerate() {
            if t < w {
                return hood[k];
            }
            t -= w;
        }
        hood[3]
    };
    let a = pick(rng, None);
    let b = pick(rng, Some(a));
    (a, b)
}

/// Fan a batch of genomes across the persistent worker pool, preserving
/// input order in the returned fitness vector. Spawning OS threads per
/// generation would cost more than a generation's worth of fitness calls;
/// the pool amortizes that, and nested calls from inside a pool worker
/// degrade to a serial loop so outer parallelism never multiplies.
fn eval_batch_threads<F: Fn(&[u32]) -> f64 + Sync>(eval: &F, batch: &[Vec<u32>]) -> Vec<f64> {
    batch.par_iter().map(|g| eval(g)).collect()
}

/// The parallel driver: islands advance in deterministic lockstep while
/// each generation's pending individuals are evaluated concurrently — the
/// analogue of the paper's MPI deployment, but with results that are
/// bit-identical to a serial run of the same seed (breeding, migration
/// and best-tracking consume fitnesses in canonical island-major order
/// regardless of which worker thread produced them).
#[derive(Debug, Clone)]
pub struct IslandGa {
    genome: Genome,
    cfg: GaConfig,
    seeds: Vec<Vec<u32>>,
    frozen: Vec<(usize, u32)>,
}

impl IslandGa {
    /// Build a parallel island GA.
    pub fn new(genome: Genome, cfg: GaConfig) -> Self {
        IslandGa { genome, cfg, seeds: Vec::new(), frozen: Vec::new() }
    }

    /// Seed the initial population with known genomes (round-robin across
    /// islands, applied before the first generation).
    pub fn with_seeds(mut self, seeds: &[Vec<u32>]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Pin genes to fixed values for the whole run (csTuner's per-group
    /// refinement: search one parameter group while the rest stay fixed).
    pub fn with_frozen(mut self, frozen: &[(usize, u32)]) -> Self {
        self.frozen = frozen.to_vec();
        self
    }

    fn build_state(&self, seed: u64) -> GaState {
        let mut state = GaState::new(self.genome.clone(), self.cfg, seed);
        if !self.seeds.is_empty() {
            state.seed_with(&self.seeds);
        }
        for &(d, v) in &self.frozen {
            state.freeze(d, v);
        }
        state
    }

    /// Run `generations` generations, driving every evaluation phase
    /// through `eval_batch` (which may fan out; the returned vector must
    /// line up with the input batch).
    pub fn run_batched(
        &self,
        generations: u32,
        seed: u64,
        eval_batch: &mut impl FnMut(&[Vec<u32>]) -> Vec<f64>,
    ) -> GaSummary {
        let mut state = self.build_state(seed);
        for _ in 0..generations {
            state.step_batched(eval_batch);
        }
        GaSummary {
            best: state.best().cloned().expect("ran at least one generation"),
            generations,
            evaluations: state.evaluations(),
        }
    }

    /// Run with each generation's population evaluated concurrently on
    /// the persistent worker pool. `eval` must be pure per call (same
    /// genes ⇒ same fitness) for the run to stay deterministic; results
    /// are then identical to [`IslandGa::run_serial`].
    pub fn run_parallel<F>(&self, generations: u32, seed: u64, eval: F) -> GaSummary
    where
        F: Fn(&[u32]) -> f64 + Sync,
    {
        self.run_batched(generations, seed, &mut |batch| eval_batch_threads(&eval, batch))
    }

    /// Serial reference driver: same trajectory as
    /// [`IslandGa::run_parallel`], one evaluation at a time.
    pub fn run_serial<F>(&self, generations: u32, seed: u64, eval: F) -> GaSummary
    where
        F: Fn(&[u32]) -> f64,
    {
        self.run_batched(generations, seed, &mut |batch| batch.iter().map(|g| eval(g)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Force a multi-lane worker pool even on single-CPU hosts, so the
    /// parallel-driver tests exercise real cross-thread evaluation rather
    /// than the pool's serial fast path. Must run before the pool's first
    /// use anywhere in this test binary (the lane count is locked then).
    fn force_parallel_lanes() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            if std::env::var_os("RAYON_NUM_THREADS").is_none() {
                std::env::set_var("RAYON_NUM_THREADS", "3");
            }
            let _ = rayon::current_num_threads();
        });
    }

    /// A deceptive multimodal fitness over 6 genes of cardinality 16:
    /// global optimum at all-12, local traps at all-3.
    fn fitness(genes: &[u32]) -> f64 {
        let near12: f64 = genes.iter().map(|&g| -((g as f64 - 12.0).abs())).sum();
        let near3: f64 = genes.iter().map(|&g| -((g as f64 - 3.0).abs())).sum();
        near12.max(near3 - 2.0)
    }

    fn genome() -> Genome {
        Genome::new(vec![16; 6])
    }

    #[test]
    fn stepping_improves_fitness() {
        let mut state = GaState::new(genome(), GaConfig::default(), 1);
        let mut eval = |g: &[u32]| fitness(g);
        state.step(&mut eval);
        let first = state.best().unwrap().fitness;
        for _ in 0..30 {
            state.step(&mut eval);
        }
        let last = state.best().unwrap().fitness;
        assert!(last >= first);
        assert!(last > -6.0, "should approach an optimum, got {last}");
    }

    #[test]
    fn finds_global_optimum_on_easy_problem() {
        let mut state = GaState::new(genome(), GaConfig::default(), 7);
        let mut eval = |g: &[u32]| -(g.iter().map(|&v| (v as f64 - 7.0).powi(2)).sum::<f64>());
        for _ in 0..60 {
            state.step(&mut eval);
        }
        let best = state.best().unwrap();
        assert!(best.fitness > -3.0, "fitness {}", best.fitness);
    }

    #[test]
    fn best_is_monotone_across_steps() {
        let mut state = GaState::new(genome(), GaConfig::default(), 5);
        let mut eval = |g: &[u32]| fitness(g);
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..20 {
            state.step(&mut eval);
            let b = state.best().unwrap().fitness;
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn evaluations_are_counted() {
        let mut state = GaState::new(genome(), GaConfig::default(), 7);
        let mut eval = |g: &[u32]| fitness(g);
        state.step(&mut eval);
        // Initial 2×16 plus the bred generation minus elites (2 islands × 15).
        assert_eq!(state.evaluations(), 32 + 30);
    }

    #[test]
    fn top_n_is_sorted_descending() {
        let mut state = GaState::new(genome(), GaConfig::default(), 11);
        let mut eval = |g: &[u32]| fitness(g);
        state.step(&mut eval);
        let top = state.top_n_fitness(10);
        assert_eq!(top.len(), 10);
        assert!(top.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = GaState::new(genome(), GaConfig::default(), seed);
            let mut eval = |g: &[u32]| fitness(g);
            for _ in 0..10 {
                s.step(&mut eval);
            }
            s.best().unwrap().clone()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn step_batched_matches_serial_step() {
        let mut serial = GaState::new(genome(), GaConfig::default(), 19);
        let mut batched = serial.clone();
        let mut eval = |g: &[u32]| fitness(g);
        let mut eval_batch =
            |batch: &[Vec<u32>]| batch.iter().map(|g| fitness(g)).collect::<Vec<_>>();
        for _ in 0..12 {
            serial.step(&mut eval);
            batched.step_batched(&mut eval_batch);
            assert_eq!(serial.best(), batched.best());
            assert_eq!(serial.evaluations(), batched.evaluations());
            let a: Vec<_> = serial.population().cloned().collect();
            let b: Vec<_> = batched.population().cloned().collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn migration_spreads_good_genes() {
        // With migration the second island benefits from the first's
        // discoveries; verify runs with migration at least match isolated
        // islands on the deceptive fitness (statistically, fixed seeds).
        let cfg_mig = GaConfig { migration_interval: 1, ..Default::default() };
        let cfg_iso = GaConfig { migration_interval: u32::MAX, ..Default::default() };
        let score = |cfg: GaConfig| {
            let mut acc = 0.0;
            for seed in 0..8 {
                let mut s = GaState::new(genome(), cfg, seed);
                let mut eval = |g: &[u32]| fitness(g);
                for _ in 0..15 {
                    s.step(&mut eval);
                }
                acc += s.best().unwrap().fitness;
            }
            acc
        };
        assert!(score(cfg_mig) >= score(cfg_iso) - 1.0);
    }

    #[test]
    fn parallel_driver_matches_quality() {
        force_parallel_lanes();
        let ga = IslandGa::new(genome(), GaConfig::default());
        let summary = ga.run_parallel(40, 13, fitness);
        assert!(summary.best.fitness > -6.0, "fitness {}", summary.best.fitness);
        assert!(summary.evaluations > 0);
        assert_eq!(summary.generations, 40);
    }

    #[test]
    fn parallel_driver_is_bit_identical_to_serial() {
        force_parallel_lanes();
        let ga = IslandGa::new(genome(), GaConfig::default());
        for seed in [13, 99] {
            let par = ga.run_parallel(25, seed, fitness);
            let ser = ga.run_serial(25, seed, fitness);
            assert_eq!(par, ser);
        }
    }

    #[test]
    fn seeded_and_frozen_runs_honor_their_constraints() {
        let optimum = vec![12u32; 6];
        let ga =
            IslandGa::new(genome(), GaConfig::default()).with_seeds(std::slice::from_ref(&optimum));
        let summary = ga.run_serial(5, 31, fitness);
        assert_eq!(summary.best.genes, optimum);

        let ga = IslandGa::new(genome(), GaConfig::default()).with_frozen(&[(0, 4), (3, 9)]);
        let mut state = ga.build_state(31);
        for _ in 0..6 {
            state.step(&mut |g: &[u32]| fitness(g));
            assert!(state.population().all(|ind| ind.genes[0] == 4 && ind.genes[3] == 9));
        }
        assert_eq!(ga.run_serial(6, 31, fitness).best.genes[0], 4);
    }

    #[test]
    fn frozen_genes_never_change() {
        let mut state = GaState::new(genome(), GaConfig::default(), 23);
        let mut eval = |g: &[u32]| fitness(g);
        state.step(&mut eval);
        state.freeze(2, 9);
        for _ in 0..10 {
            state.step(&mut eval);
            assert!(state.population().all(|ind| ind.genes[2] == 9));
        }
        assert_eq!(state.frozen()[2], Some(9));
        assert_eq!(state.frozen()[0], None);
    }

    #[test]
    #[should_panic(expected = "frozen value out of range")]
    fn freeze_out_of_range_panics() {
        let mut state = GaState::new(genome(), GaConfig::default(), 1);
        state.freeze(0, 99);
    }

    #[test]
    fn seeded_individuals_enter_the_population() {
        let mut state = GaState::new(genome(), GaConfig::default(), 29);
        let seed_genes = vec![12u32; 6]; // the global optimum
        state.seed_with(std::slice::from_ref(&seed_genes));
        let mut eval = |g: &[u32]| fitness(g);
        state.step(&mut eval);
        // Elitism keeps the seeded optimum forever.
        assert_eq!(state.best().unwrap().genes, seed_genes);
        assert_eq!(state.best().unwrap().fitness, 0.0);
    }

    #[test]
    fn infeasible_candidates_are_avoided() {
        // Half the space returns NEG_INFINITY; the GA must still improve.
        let mut state = GaState::new(genome(), GaConfig::default(), 17);
        let mut eval = |g: &[u32]| {
            if g[0].is_multiple_of(2) {
                f64::NEG_INFINITY
            } else {
                fitness(g)
            }
        };
        for _ in 0..30 {
            state.step(&mut eval);
        }
        let best = state.best().unwrap();
        assert!(best.fitness.is_finite());
        assert_eq!(best.genes[0] % 2, 1);
    }
}
