//! Island-model genetic algorithm (§IV-E, Fig. 6).
//!
//! The paper runs one sub-population per MPI process, migrating individuals
//! around a single-ring topology; new individuals are bred by uniform
//! gene-level crossover from fitness-biased neighborhood parents and
//! bit-level mutation over binary-encoded genes. This crate reproduces that
//! design with two drivers over the same state:
//!
//! - [`GaState::step`]: one synchronous generation at a time, letting the
//!   caller evaluate individuals itself (csTuner interleaves evaluation
//!   with virtual-clock accounting and the CV(top-n) approximation stop).
//! - [`IslandGa::run_parallel`]: one OS thread per island with
//!   channel-based ring migration — the faithful analogue of the MPI
//!   deployment for evaluators that are cheap and `Sync`.
//!
//! Genes are indices into re-indexed value sets (Fig. 7), so every bit
//! pattern within a gene's range is meaningful; mutation re-draws values
//! that fall outside the range.

pub mod engine;
pub mod genome;

pub use engine::{GaConfig, GaState, GaSummary, IslandGa};
pub use genome::{Genome, Individual};
